/**
 * @file
 * Memory-access profiling subsystem: the Fenwick-tree stack-distance
 * counter against a brute-force LRU-stack oracle, the shadow-directory /
 * reuse-distance equivalence, 3C classification properties, region and
 * phase attribution, the log-spaced histogram, and the armed end-to-end
 * path (counter identities against the hierarchy report plus --profile
 * document byte-invariance across --jobs).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "graph/datasets.hh"
#include "sim/access.hh"
#include "sim/machine_registry.hh"
#include "sim/profile.hh"
#include "util/stats.hh"

namespace omega {
namespace {

/** Deterministic 64-bit LCG (no std::rand state leakage across tests). */
class Lcg
{
  public:
    explicit Lcg(std::uint64_t seed) : state_(seed) {}
    std::uint64_t
    next()
    {
        state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
        return state_ >> 17;
    }

  private:
    std::uint64_t state_;
};

/**
 * Brute-force Mattson oracle: an explicit LRU stack. The distance of an
 * access is the number of distinct addresses above it in the stack
 * (its index from the MRU end), kColdMiss on first touch.
 */
class StackOracle
{
  public:
    std::uint64_t
    record(std::uint64_t addr)
    {
        for (std::size_t i = 0; i < stack_.size(); ++i) {
            if (stack_[i] == addr) {
                stack_.erase(stack_.begin() +
                             static_cast<std::ptrdiff_t>(i));
                stack_.insert(stack_.begin(), addr);
                return i;
            }
        }
        stack_.insert(stack_.begin(), addr);
        return ReuseDistanceCounter::kColdMiss;
    }

  private:
    std::vector<std::uint64_t> stack_; // front = MRU
};

void
fuzzAgainstOracle(std::uint64_t seed, std::uint64_t pool,
                  std::size_t accesses)
{
    Lcg rng(seed);
    ReuseDistanceCounter tree;
    StackOracle oracle;
    for (std::size_t i = 0; i < accesses; ++i) {
        const std::uint64_t addr = (rng.next() % pool) * 64;
        const std::uint64_t want = oracle.record(addr);
        const std::uint64_t got = tree.record(addr);
        ASSERT_EQ(got, want) << "access " << i << " addr " << addr;
    }
}

TEST(ReuseDistance, MatchesOracleSmallPoolWithCompaction)
{
    // 64 live addresses x 10k accesses: the slot counter reaches ~10k
    // while only 64 slots stay live, forcing many compactions.
    fuzzAgainstOracle(/*seed=*/1, /*pool=*/64, /*accesses=*/10000);
}

TEST(ReuseDistance, MatchesOracleMediumPool)
{
    fuzzAgainstOracle(/*seed=*/2, /*pool=*/1024, /*accesses=*/10000);
}

TEST(ReuseDistance, MatchesOracleSkewedStream)
{
    // Power-law-ish: 3/4 of accesses hit a 16-address hot set, the rest
    // spray over 4096 — the shape the profiler sees on natural graphs.
    Lcg rng(3);
    ReuseDistanceCounter tree;
    StackOracle oracle;
    for (std::size_t i = 0; i < 10000; ++i) {
        const std::uint64_t pool = (rng.next() % 4 != 0) ? 16 : 4096;
        const std::uint64_t addr = (rng.next() % pool) * 64;
        const std::uint64_t want = oracle.record(addr);
        ASSERT_EQ(tree.record(addr), want) << "access " << i;
    }
    EXPECT_GT(tree.uniqueAddrs(), 16u);
}

TEST(ReuseDistance, HandDrivenDistances)
{
    ReuseDistanceCounter c;
    constexpr std::uint64_t kCold = ReuseDistanceCounter::kColdMiss;
    EXPECT_EQ(c.record(0x100), kCold);
    EXPECT_EQ(c.record(0x100), 0u); // immediate re-reference
    EXPECT_EQ(c.record(0x200), kCold);
    EXPECT_EQ(c.record(0x300), kCold);
    EXPECT_EQ(c.record(0x100), 2u); // 0x200, 0x300 in between
    EXPECT_EQ(c.record(0x200), 2u); // 0x300, 0x100 in between
    EXPECT_EQ(c.uniqueAddrs(), 3u);
}

TEST(ShadowDirectory, HitIffReuseDistanceBelowCapacity)
{
    // The LRU-stack inclusion property: a fully-associative LRU
    // directory of capacity C holds an address iff its stack distance is
    // < C. This ties the two independent implementations together.
    constexpr std::uint64_t kCap = 32;
    Lcg rng(4);
    ShadowDirectory shadow(kCap);
    StackOracle oracle;
    for (std::size_t i = 0; i < 8000; ++i) {
        const std::uint64_t addr = (rng.next() % 128) * 64;
        const std::uint64_t dist = oracle.record(addr);
        const bool present = shadow.access(addr);
        const bool want =
            dist != ReuseDistanceCounter::kColdMiss && dist < kCap;
        ASSERT_EQ(present, want) << "access " << i << " dist " << dist;
        ASSERT_LE(shadow.size(), kCap);
    }
}

TEST(ShadowDirectory, ZeroCapacityNeverHits)
{
    ShadowDirectory shadow(0);
    EXPECT_FALSE(shadow.access(0x40));
    EXPECT_FALSE(shadow.access(0x40));
    EXPECT_EQ(shadow.size(), 0u);
}

AccessProfiler::Config
smallConfig()
{
    AccessProfiler::Config cfg;
    cfg.num_cores = 1;
    cfg.l1_lines = 16;
    cfg.llc_lines = 64;
    cfg.llc_sets = 8;
    cfg.line_bytes = 64;
    cfg.num_scratchpads = 2;
    return cfg;
}

TEST(ThreeC, FullyAssociativeRealCacheHasZeroConflictMisses)
{
    // Drive the LLC hook with hit/miss decided by a fully-associative
    // LRU of the same capacity as the profiler's shadow. By definition
    // the shadow can then never hit where the "real" cache missed, so
    // every miss must classify as compulsory or capacity.
    AccessProfiler prof(smallConfig());
    ShadowDirectory real(64); // stands in for a fully-assoc real cache
    Lcg rng(5);
    for (std::size_t i = 0; i < 20000; ++i) {
        const std::uint64_t addr = (rng.next() % 512) * 64;
        const bool hit = real.access(addr);
        prof.onLlcAccess(addr, hit, (addr / 64) % 8);
    }
    const ThreeCCounts &c = prof.llcCounts();
    EXPECT_EQ(c.accesses, 20000u);
    EXPECT_GT(c.misses, 0u);
    EXPECT_EQ(c.conflict, 0u);
    EXPECT_EQ(c.compulsory + c.capacity, c.misses);
}

TEST(ThreeC, ColdCacheAllDistinctAddressesAreCompulsory)
{
    AccessProfiler prof(smallConfig());
    for (std::uint64_t i = 0; i < 500; ++i) {
        prof.onLlcAccess(i * 64, /*hit=*/false, i % 8);
        prof.onL1Access(0, i * 64, /*hit=*/false);
    }
    EXPECT_EQ(prof.llcCounts().misses, 500u);
    EXPECT_EQ(prof.llcCounts().compulsory, 500u);
    EXPECT_EQ(prof.llcCounts().conflict, 0u);
    EXPECT_EQ(prof.llcCounts().capacity, 0u);
    EXPECT_EQ(prof.l1Counts().compulsory, 500u);
    // Every first touch is also a reuse cold miss.
    EXPECT_EQ(prof.reuseColdMisses(), 500u);
}

TEST(ThreeC, PrematureEvictionClassifiesAsConflict)
{
    AccessProfiler prof(smallConfig());
    prof.onLlcAccess(0x40, /*hit=*/false, 1); // cold -> compulsory
    // Re-access immediately but report a real-cache miss: the shadow
    // still holds the line, so only set placement can explain it.
    prof.onLlcAccess(0x40, /*hit=*/false, 1);
    EXPECT_EQ(prof.llcCounts().misses, 2u);
    EXPECT_EQ(prof.llcCounts().compulsory, 1u);
    EXPECT_EQ(prof.llcCounts().conflict, 1u);
    EXPECT_EQ(prof.llcCounts().capacity, 0u);
}

TEST(ThreeC, PerCoreFirstTouchTracking)
{
    // The same line is compulsory once per core (private L1s).
    AccessProfiler::Config cfg = smallConfig();
    cfg.num_cores = 2;
    AccessProfiler prof(cfg);
    prof.onL1Access(0, 0x40, false);
    prof.onL1Access(1, 0x40, false);
    prof.onL1Access(0, 0x40, false); // seen by core 0 already
    EXPECT_EQ(prof.l1Counts().compulsory, 2u);
    EXPECT_EQ(prof.l1Counts().misses, 3u);
}

MachineConfig
regionConfig()
{
    MachineConfig config;
    config.num_vertices = 100;
    PropSpec p;
    p.start_addr = addr_space::kPropBase;
    p.type_size = 8;
    p.stride = 8;
    p.count = 100;
    config.props.push_back(p);
    config.dense_active_base = addr_space::kActiveBase;
    config.sparse_active_base = addr_space::kActiveBase + 1024;
    config.sparse_counter_addr = addr_space::kActiveBase + 8192;
    config.hot_boundary = 10; // hot [0,10), warm [10,40), cold [40,100)
    return config;
}

TEST(RegionAttribution, BucketsFollowGraspTiersAndAddressSpaces)
{
    AccessProfiler prof(smallConfig());
    prof.configure(regionConfig());
    const std::uint64_t hot = addr_space::kPropBase + 5 * 8;
    const std::uint64_t warm = addr_space::kPropBase + 20 * 8;
    const std::uint64_t cold = addr_space::kPropBase + 50 * 8;

    prof.onLlcAccess(hot, false, 0);
    prof.onLlcAccess(warm, true, 0);
    prof.onLlcAccess(cold, false, 0);
    prof.onLlcAccess(addr_space::kEdgeBase + 4096, false, 0);
    prof.onLlcAccess(addr_space::kActiveBase + 17, true, 0);
    prof.onLlcAccess(addr_space::kOtherBase + 64, false, 0);

    EXPECT_EQ(prof.regionCounts(RegionBucket::Hot).llc_accesses, 1u);
    EXPECT_EQ(prof.regionCounts(RegionBucket::Hot).llc_misses, 1u);
    EXPECT_EQ(prof.regionCounts(RegionBucket::Warm).llc_accesses, 1u);
    EXPECT_EQ(prof.regionCounts(RegionBucket::Warm).llc_misses, 0u);
    EXPECT_EQ(prof.regionCounts(RegionBucket::Cold).llc_accesses, 1u);
    EXPECT_EQ(prof.regionCounts(RegionBucket::Edge).llc_accesses, 1u);
    EXPECT_EQ(prof.regionCounts(RegionBucket::Frontier).llc_accesses, 1u);
    EXPECT_EQ(prof.regionCounts(RegionBucket::Other).llc_accesses, 1u);

    prof.onDramRead(hot, 64);
    prof.onDramWrite(addr_space::kEdgeBase, 128);
    EXPECT_EQ(prof.regionCounts(RegionBucket::Hot).dram_read_bytes, 64u);
    EXPECT_EQ(prof.regionCounts(RegionBucket::Edge).dram_write_bytes, 128u);

    prof.onScratchpadAccess(hot, 8, /*write=*/false, /*home=*/1);
    EXPECT_EQ(prof.regionCounts(RegionBucket::Hot).sp_accesses, 1u);
    EXPECT_EQ(prof.regionCounts(RegionBucket::Hot).sp_bytes, 8u);
}

TEST(PhaseAttribution, PhasesSplitAtEndPhaseAndFlushOnFinish)
{
    AccessProfiler prof(smallConfig());
    prof.onLlcAccess(0x40, false, 0);
    prof.onLlcAccess(0x80, false, 0);
    prof.endPhase(100);
    prof.onLlcAccess(0xc0, false, 0);
    prof.endPhase(250);
    ASSERT_EQ(prof.phases().size(), 2u);
    EXPECT_EQ(prof.phases()[0].llc_accesses, 2u);
    EXPECT_EQ(prof.phases()[0].end_cycles, 100u);
    EXPECT_EQ(prof.phases()[0].first_iteration, 0u);
    EXPECT_EQ(prof.phases()[1].llc_accesses, 1u);
    EXPECT_EQ(prof.phases()[1].end_cycles, 250u);
    EXPECT_EQ(prof.phases()[1].first_iteration, 1u);

    // finishRun with nothing outstanding adds no empty phase...
    prof.finishRun(300);
    EXPECT_EQ(prof.phases().size(), 2u);
    // ...but flushes a trailing partial phase when one is open.
    prof.onDramRead(0x40, 64);
    prof.finishRun(400);
    ASSERT_EQ(prof.phases().size(), 3u);
    EXPECT_EQ(prof.phases()[2].dram_read_bytes, 64u);
    EXPECT_EQ(prof.phases()[2].end_cycles, 400u);
}

TEST(PhaseAttribution, TailIterationsAggregateIntoLastPhase)
{
    AccessProfiler prof(smallConfig());
    for (std::uint64_t i = 0; i < AccessProfiler::kMaxPhases + 40; ++i) {
        prof.onLlcAccess(0x40 + 64 * i, false, 0);
        prof.endPhase(100 * (i + 1));
    }
    ASSERT_EQ(prof.phases().size(), AccessProfiler::kMaxPhases);
    const PhaseProfile &tail = prof.phases().back();
    EXPECT_EQ(tail.last_iteration, AccessProfiler::kMaxPhases + 39);
    EXPECT_EQ(tail.llc_accesses, 41u); // 1 + the 40 aggregated tails
    EXPECT_EQ(tail.end_cycles, 100u * (AccessProfiler::kMaxPhases + 40));
}

TEST(ProfilerReset, ZerosCountersInPlace)
{
    AccessProfiler prof(smallConfig());
    prof.configure(regionConfig());
    prof.onLlcAccess(addr_space::kPropBase, false, 0);
    prof.onDramRead(addr_space::kPropBase, 64);
    prof.endPhase(10);
    const ThreeCCounts *llc_before = &prof.llcCounts();
    prof.reset();
    // Same member addresses (the lazily-registered stat group holds
    // pointers), every counter zeroed.
    EXPECT_EQ(&prof.llcCounts(), llc_before);
    EXPECT_EQ(prof.llcCounts().accesses, 0u);
    EXPECT_EQ(prof.phases().size(), 0u);
    EXPECT_EQ(prof.reuseColdMisses(), 0u);
    EXPECT_EQ(prof.regionCounts(RegionBucket::Hot).llc_accesses, 0u);
}

TEST(LogHistogram, BucketEdgesAndUnderOverflow)
{
    Histogram h = Histogram::logSpaced(1.0, 1e8, 32);
    EXPECT_TRUE(h.logSpacedBuckets());
    h.sample(1.0); // exactly lo -> bucket 0
    h.sample(0.5); // below lo -> underflow (distance-0 reuse lands here)
    h.sample(1e8); // exactly hi -> overflow by half-open convention
    h.sample(1e8 - 1);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(31), 1u);
}

TEST(LogHistogram, QuantileTracksMassAcrossDecades)
{
    Histogram h = Histogram::logSpaced(1.0, 1e8, 32);
    // All mass at ~1000: any quantile must land in 1000's bucket, whose
    // width is a factor of 1e8^(1/32) ~ 1.78.
    for (int i = 0; i < 100; ++i)
        h.sample(1000.0);
    EXPECT_GT(h.quantile(0.5), 1000.0 / 1.8);
    EXPECT_LT(h.quantile(0.5), 1000.0 * 1.8);
    // Mass across decades: quantiles are monotone and ordered.
    Histogram g = Histogram::logSpaced(1.0, 1e8, 32);
    for (int i = 0; i < 90; ++i)
        g.sample(10.0);
    for (int i = 0; i < 10; ++i)
        g.sample(1e6);
    EXPECT_LT(g.quantile(0.5), 100.0);
    EXPECT_GT(g.quantile(0.95), 1e5);
    EXPECT_LE(g.quantile(0.5), g.quantile(0.95));
}

TEST(LogHistogramDeathTest, RejectsNonPositiveLowerBound)
{
    EXPECT_DEATH(Histogram::logSpaced(0.0, 1e8, 32), "lo > 0");
}

// ---------------------------------------------------------------------
// Armed end-to-end paths (need OMEGA_PROFILE to observe anything).
// ---------------------------------------------------------------------

TEST(ProfileArmed, CountersMatchHierarchyReport)
{
    if (!profile::compiledIn())
        GTEST_SKIP() << "OMEGA_PROFILE compiled out";
    const DatasetSpec sd = *findDataset("sd");
    const Graph &g = bench::datasetGraph(sd);
    for (const bench::MachineKind kind :
         {bench::MachineKind::Baseline, bench::MachineKind::Grasp,
          bench::MachineKind::Omega}) {
        const std::string name = bench::machineKindName(kind);
        const MachineParams params = bench::machineFor(kind, sd);
        auto m = machineEntry(name).make(params);
        m->armProfile();
        runAlgorithmOnMachine(AlgorithmKind::PageRank, g, m.get());
        AccessProfiler *prof = m->profiler();
        ASSERT_NE(prof, nullptr) << name;
        prof->finishRun(m->cycles());
        const StatsReport r = m->report();
        const ThreeCCounts &llc = prof->llcCounts();
        EXPECT_GT(llc.accesses, 0u) << name;
        EXPECT_EQ(llc.accesses, r.l2_accesses) << name;
        EXPECT_EQ(llc.misses, r.l2_accesses - r.l2_hits) << name;
        EXPECT_EQ(llc.compulsory + llc.conflict + llc.capacity,
                  llc.misses)
            << name;
        EXPECT_EQ(prof->l1Counts().accesses, r.l1_accesses) << name;
        const ProfileSummary s = prof->summary();
        EXPECT_TRUE(s.armed);
        EXPECT_EQ(s.dram_read_bytes, r.dram_read_bytes) << name;
        EXPECT_EQ(s.dram_write_bytes, r.dram_write_bytes) << name;
        EXPECT_EQ(s.sp_accesses, r.sp_accesses) << name;
        // Phase records cover the whole run exactly once.
        std::uint64_t phase_llc = 0;
        for (const PhaseProfile &p : prof->phases())
            phase_llc += p.llc_accesses;
        EXPECT_EQ(phase_llc, llc.accesses) << name;
    }
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << path;
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** One small profiled sweep; returns the --profile document bytes. */
std::string
profiledSweep(unsigned jobs, const std::string &tag)
{
    const std::string path =
        ::testing::TempDir() + "profile_sweep_" + tag + ".json";
    std::vector<std::string> arg_strings = {"bench", "--profile", path,
                                            "--jobs",
                                            std::to_string(jobs)};
    std::vector<char *> argv;
    for (std::string &s : arg_strings)
        argv.push_back(s.data());

    const DatasetSpec sd = *findDataset("sd");
    {
        bench::BenchSession session("bench_profile_sweep",
                                    static_cast<int>(argv.size()),
                                    argv.data());
        bench::SweepRunner sweep;
        sweep.add(sd, AlgorithmKind::PageRank, bench::MachineKind::Baseline);
        sweep.add(sd, AlgorithmKind::PageRank, bench::MachineKind::Grasp);
        sweep.run();
        bench::runOn(sd, AlgorithmKind::PageRank,
                     bench::MachineKind::Baseline);
        bench::runOn(sd, AlgorithmKind::PageRank,
                     bench::MachineKind::Grasp);
    }
    const std::string doc = slurp(path);
    std::remove(path.c_str());
    return doc;
}

TEST(ProfileDocument, ByteIdenticalAcrossJobsAndRepeatable)
{
    const std::string seq = profiledSweep(1, "seq");
    const std::string par = profiledSweep(4, "par");
    const std::string rep = profiledSweep(4, "rep");
    EXPECT_EQ(seq, par);
    EXPECT_EQ(par, rep);
    EXPECT_NE(seq.find("\"profile_compiled_in\""), std::string::npos);
    EXPECT_NE(seq.find("\"runs\""), std::string::npos);
    if (profile::compiledIn()) {
        EXPECT_NE(seq.find("\"reuse_distance\""), std::string::npos);
        EXPECT_NE(seq.find("\"regions\""), std::string::npos);
        EXPECT_NE(seq.find("\"phases\""), std::string::npos);
        EXPECT_NE(seq.find("\"llc_sets\""), std::string::npos);
    }
}

} // namespace
} // namespace omega
