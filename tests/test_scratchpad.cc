/**
 * @file
 * Tests for the scratchpad storage model and the scratchpad controller's
 * monitor / partition / index units (paper Fig 7).
 */

#include <gtest/gtest.h>

#include "omega/scratchpad.hh"
#include "omega/scratchpad_controller.hh"
#include "sim/access.hh"

namespace omega {
namespace {

TEST(Scratchpad, LineCapacity)
{
    Scratchpad sp(1024 * 1024, 3);
    EXPECT_EQ(sp.latency(), 3u);
    // 9-byte lines (8 B prop + active byte): 116508 lines fit.
    const VertexId lines = sp.setLineBytes(9);
    EXPECT_EQ(lines, 1024u * 1024u / 9u);
    EXPECT_EQ(sp.numLines(), lines);
    EXPECT_EQ(sp.lineBytes(), 9u);
}

TEST(Scratchpad, AccessAccounting)
{
    Scratchpad sp(4096, 3);
    sp.setLineBytes(8);
    sp.recordRead(8);
    sp.recordWrite(4);
    sp.recordAtomic();
    EXPECT_EQ(sp.reads(), 1u);
    EXPECT_EQ(sp.writes(), 1u);
    EXPECT_EQ(sp.atomics(), 1u);
    EXPECT_EQ(sp.bytesRead(), 8u + 8u);
    EXPECT_EQ(sp.bytesWritten(), 4u + 8u);
    sp.reset();
    EXPECT_EQ(sp.reads(), 0u);
    EXPECT_EQ(sp.bytesRead(), 0u);
}

class ControllerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PropSpec p0;
        p0.start_addr = 0x1000;
        p0.type_size = 8;
        p0.stride = 8;
        p0.count = 1000;
        PropSpec p1;
        p1.start_addr = 0x10000;
        p1.type_size = 4;
        p1.stride = 4;
        p1.count = 1000;
        ctrl_.configure({p0, p1}, /*resident=*/600);
    }

    ScratchpadController ctrl_{4, 16};
};

TEST_F(ControllerTest, MonitorMatchesFirstProp)
{
    auto r = ctrl_.route(0x1000 + 8 * 5);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->vertex, 5u);
    EXPECT_EQ(r->prop, 0u);
}

TEST_F(ControllerTest, MonitorMatchesSecondProp)
{
    auto r = ctrl_.route(0x10000 + 4 * 321);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->vertex, 321u);
    EXPECT_EQ(r->prop, 1u);
}

TEST_F(ControllerTest, UnmonitoredAddressFallsThrough)
{
    EXPECT_FALSE(ctrl_.route(0x500).has_value());
    EXPECT_FALSE(ctrl_.route(0x1000 + 8 * 1000).has_value()); // past count
    EXPECT_FALSE(ctrl_.route(0x9999999).has_value());
}

TEST_F(ControllerTest, NonResidentVertexFallsThrough)
{
    // Vertex 700 is monitored but beyond the resident boundary.
    EXPECT_FALSE(ctrl_.route(0x1000 + 8 * 700).has_value());
    EXPECT_TRUE(ctrl_.isResident(599));
    EXPECT_FALSE(ctrl_.isResident(600));
}

TEST_F(ControllerTest, StridedStructSkipsGaps)
{
    // A prop inside a struct: 4 valid bytes every 12.
    PropSpec p;
    p.start_addr = 0x2000;
    p.type_size = 4;
    p.stride = 12;
    p.count = 100;
    ScratchpadController c(4, 16);
    c.configure({p}, 100);
    EXPECT_TRUE(c.route(0x2000 + 12 * 3).has_value());
    EXPECT_TRUE(c.route(0x2000 + 12 * 3 + 3).has_value());
    // Offset 4..11 within the stride belongs to other struct fields.
    EXPECT_FALSE(c.route(0x2000 + 12 * 3 + 4).has_value());
    EXPECT_FALSE(c.route(0x2000 + 12 * 3 + 11).has_value());
}

TEST_F(ControllerTest, PartitionInterleavesByChunk)
{
    // chunk=16 over 4 scratchpads: vertices 0-15 -> sp0, 16-31 -> sp1...
    EXPECT_EQ(ctrl_.homeOf(0), 0u);
    EXPECT_EQ(ctrl_.homeOf(15), 0u);
    EXPECT_EQ(ctrl_.homeOf(16), 1u);
    EXPECT_EQ(ctrl_.homeOf(63), 3u);
    EXPECT_EQ(ctrl_.homeOf(64), 0u); // wraps around
}

TEST_F(ControllerTest, IndexUnitLineNumbers)
{
    // Vertex 64 is the first vertex of sp0's second chunk.
    EXPECT_EQ(ctrl_.lineOf(0), 0u);
    EXPECT_EQ(ctrl_.lineOf(15), 15u);
    EXPECT_EQ(ctrl_.lineOf(16), 0u);  // first line of sp1
    EXPECT_EQ(ctrl_.lineOf(64), 16u); // sp0, second chunk
    EXPECT_EQ(ctrl_.lineOf(65), 17u);
}

TEST_F(ControllerTest, RouteFillsHomeAndLine)
{
    auto r = ctrl_.route(0x1000 + 8 * 20);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->home, 1u);
    EXPECT_EQ(r->line, 4u);
}

TEST_F(ControllerTest, AtomicBlockingSerializesSameVertex)
{
    // Two atomics on the same vertex: the second waits.
    const Cycles s1 = ctrl_.beginAtomic(7, 100, 5);
    EXPECT_EQ(s1, 100u);
    const Cycles s2 = ctrl_.beginAtomic(7, 102, 5);
    EXPECT_EQ(s2, 105u);
    EXPECT_EQ(ctrl_.conflicts(), 1u);
    // A different vertex is unaffected.
    EXPECT_EQ(ctrl_.beginAtomic(8, 102, 5), 102u);
    EXPECT_EQ(ctrl_.conflicts(), 1u);
}

TEST_F(ControllerTest, VertexBusyWindow)
{
    ctrl_.beginAtomic(3, 50, 10);
    EXPECT_TRUE(ctrl_.isVertexBusy(3, 55));
    EXPECT_FALSE(ctrl_.isVertexBusy(3, 60));
    EXPECT_FALSE(ctrl_.isVertexBusy(4, 55));
}

TEST_F(ControllerTest, ResetClearsBusyAndConflicts)
{
    ctrl_.beginAtomic(3, 50, 10);
    ctrl_.beginAtomic(3, 51, 10);
    EXPECT_EQ(ctrl_.conflicts(), 1u);
    ctrl_.reset();
    EXPECT_EQ(ctrl_.conflicts(), 0u);
    EXPECT_FALSE(ctrl_.isVertexBusy(3, 55));
}

TEST(ControllerDeathTest, OverlappingRangesAreRejected)
{
    // route() is first-match-wins; overlapping monitored ranges would
    // silently send the shared span to the wrong prop, so configure()
    // must refuse them.
    PropSpec a;
    a.start_addr = 0x1000;
    a.type_size = 8;
    a.stride = 8;
    a.count = 10;
    PropSpec b;
    b.start_addr = 0x1000;
    b.type_size = 8;
    b.stride = 8;
    b.count = 20;
    ScratchpadController c(2, 4);
    EXPECT_DEATH(c.configure({a, b}, 20), "overlapping monitored");
}

TEST(Controller, AdjacentRangesAreDisjoint)
{
    // Back-to-back ranges (b starts exactly where a ends) must still be
    // accepted: the registry bump-allocates exactly this layout.
    PropSpec a;
    a.start_addr = 0x1000;
    a.type_size = 8;
    a.stride = 8;
    a.count = 10;
    PropSpec b;
    b.start_addr = 0x1000 + 8 * 10;
    b.type_size = 8;
    b.stride = 8;
    b.count = 10;
    ScratchpadController c(2, 4);
    c.configure({a, b}, 10);
    auto r = c.route(b.start_addr);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->prop, 1u);
}

TEST_F(ControllerTest, RetireCompletedBoundsBusyTable)
{
    // Without pruning the busy table grows by one entry per vertex ever
    // touched by an atomic; retiring at a barrier must drop every entry
    // whose atomic already finished.
    for (VertexId v = 0; v < 100; ++v)
        ctrl_.beginAtomic(v, /*arrival=*/v, /*duration=*/10);
    EXPECT_EQ(ctrl_.busyTableSize(), 100u);

    // At cycle 50, vertices 0..40 (busy until v+10 <= 50) are done.
    ctrl_.retireCompleted(50);
    EXPECT_EQ(ctrl_.busyTableSize(), 59u);
    // Retired entries no longer serialize; in-flight ones still do.
    EXPECT_FALSE(ctrl_.isVertexBusy(0, 50));
    EXPECT_TRUE(ctrl_.isVertexBusy(99, 50));
    EXPECT_EQ(ctrl_.beginAtomic(0, 50, 5), 50u);

    // Once every atomic has drained, the table must be empty again.
    ctrl_.retireCompleted(1000);
    EXPECT_EQ(ctrl_.busyTableSize(), 0u);
}

} // namespace
} // namespace omega
