/**
 * @file
 * Tests for the scratchpad storage model and the scratchpad controller's
 * monitor / partition / index units (paper Fig 7).
 */

#include <algorithm>
#include <cstdint>
#include <map>

#include <gtest/gtest.h>

#include "omega/scratchpad.hh"
#include "omega/scratchpad_controller.hh"
#include "sim/access.hh"

namespace omega {
namespace {

TEST(Scratchpad, LineCapacity)
{
    Scratchpad sp(1024 * 1024, 3);
    EXPECT_EQ(sp.latency(), 3u);
    // 9-byte lines (8 B prop + active byte): 116508 lines fit.
    const VertexId lines = sp.setLineBytes(9);
    EXPECT_EQ(lines, 1024u * 1024u / 9u);
    EXPECT_EQ(sp.numLines(), lines);
    EXPECT_EQ(sp.lineBytes(), 9u);
}

TEST(Scratchpad, AccessAccounting)
{
    Scratchpad sp(4096, 3);
    sp.setLineBytes(8);
    sp.recordRead(8);
    sp.recordWrite(4);
    sp.recordAtomic();
    EXPECT_EQ(sp.reads(), 1u);
    EXPECT_EQ(sp.writes(), 1u);
    EXPECT_EQ(sp.atomics(), 1u);
    EXPECT_EQ(sp.bytesRead(), 8u + 8u);
    EXPECT_EQ(sp.bytesWritten(), 4u + 8u);
    sp.reset();
    EXPECT_EQ(sp.reads(), 0u);
    EXPECT_EQ(sp.bytesRead(), 0u);
}

class ControllerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PropSpec p0;
        p0.start_addr = 0x1000;
        p0.type_size = 8;
        p0.stride = 8;
        p0.count = 1000;
        PropSpec p1;
        p1.start_addr = 0x10000;
        p1.type_size = 4;
        p1.stride = 4;
        p1.count = 1000;
        ctrl_.configure({p0, p1}, /*resident=*/600);
    }

    ScratchpadController ctrl_{4, 16};
};

TEST_F(ControllerTest, MonitorMatchesFirstProp)
{
    auto r = ctrl_.route(0x1000 + 8 * 5);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->vertex, 5u);
    EXPECT_EQ(r->prop, 0u);
}

TEST_F(ControllerTest, MonitorMatchesSecondProp)
{
    auto r = ctrl_.route(0x10000 + 4 * 321);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->vertex, 321u);
    EXPECT_EQ(r->prop, 1u);
}

TEST_F(ControllerTest, UnmonitoredAddressFallsThrough)
{
    EXPECT_FALSE(ctrl_.route(0x500).has_value());
    EXPECT_FALSE(ctrl_.route(0x1000 + 8 * 1000).has_value()); // past count
    EXPECT_FALSE(ctrl_.route(0x9999999).has_value());
}

TEST_F(ControllerTest, NonResidentVertexFallsThrough)
{
    // Vertex 700 is monitored but beyond the resident boundary.
    EXPECT_FALSE(ctrl_.route(0x1000 + 8 * 700).has_value());
    EXPECT_TRUE(ctrl_.isResident(599));
    EXPECT_FALSE(ctrl_.isResident(600));
}

TEST_F(ControllerTest, StridedStructSkipsGaps)
{
    // A prop inside a struct: 4 valid bytes every 12.
    PropSpec p;
    p.start_addr = 0x2000;
    p.type_size = 4;
    p.stride = 12;
    p.count = 100;
    ScratchpadController c(4, 16);
    c.configure({p}, 100);
    EXPECT_TRUE(c.route(0x2000 + 12 * 3).has_value());
    EXPECT_TRUE(c.route(0x2000 + 12 * 3 + 3).has_value());
    // Offset 4..11 within the stride belongs to other struct fields.
    EXPECT_FALSE(c.route(0x2000 + 12 * 3 + 4).has_value());
    EXPECT_FALSE(c.route(0x2000 + 12 * 3 + 11).has_value());
}

TEST_F(ControllerTest, PartitionInterleavesByChunk)
{
    // chunk=16 over 4 scratchpads: vertices 0-15 -> sp0, 16-31 -> sp1...
    EXPECT_EQ(ctrl_.homeOf(0), 0u);
    EXPECT_EQ(ctrl_.homeOf(15), 0u);
    EXPECT_EQ(ctrl_.homeOf(16), 1u);
    EXPECT_EQ(ctrl_.homeOf(63), 3u);
    EXPECT_EQ(ctrl_.homeOf(64), 0u); // wraps around
}

TEST_F(ControllerTest, IndexUnitLineNumbers)
{
    // Vertex 64 is the first vertex of sp0's second chunk.
    EXPECT_EQ(ctrl_.lineOf(0), 0u);
    EXPECT_EQ(ctrl_.lineOf(15), 15u);
    EXPECT_EQ(ctrl_.lineOf(16), 0u);  // first line of sp1
    EXPECT_EQ(ctrl_.lineOf(64), 16u); // sp0, second chunk
    EXPECT_EQ(ctrl_.lineOf(65), 17u);
}

TEST_F(ControllerTest, RouteFillsHomeAndLine)
{
    auto r = ctrl_.route(0x1000 + 8 * 20);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->home, 1u);
    EXPECT_EQ(r->line, 4u);
}

TEST_F(ControllerTest, AtomicBlockingSerializesSameVertex)
{
    // Two atomics on the same vertex: the second waits.
    const Cycles s1 = ctrl_.beginAtomic(7, 100, 5);
    EXPECT_EQ(s1, 100u);
    const Cycles s2 = ctrl_.beginAtomic(7, 102, 5);
    EXPECT_EQ(s2, 105u);
    EXPECT_EQ(ctrl_.conflicts(), 1u);
    // A different vertex is unaffected.
    EXPECT_EQ(ctrl_.beginAtomic(8, 102, 5), 102u);
    EXPECT_EQ(ctrl_.conflicts(), 1u);
}

TEST_F(ControllerTest, VertexBusyWindow)
{
    ctrl_.beginAtomic(3, 50, 10);
    EXPECT_TRUE(ctrl_.isVertexBusy(3, 55));
    EXPECT_FALSE(ctrl_.isVertexBusy(3, 60));
    EXPECT_FALSE(ctrl_.isVertexBusy(4, 55));
}

TEST_F(ControllerTest, ResetClearsBusyAndConflicts)
{
    ctrl_.beginAtomic(3, 50, 10);
    ctrl_.beginAtomic(3, 51, 10);
    EXPECT_EQ(ctrl_.conflicts(), 1u);
    ctrl_.reset();
    EXPECT_EQ(ctrl_.conflicts(), 0u);
    EXPECT_FALSE(ctrl_.isVertexBusy(3, 55));
}

TEST(ControllerDeathTest, OverlappingRangesAreRejected)
{
    // route() is first-match-wins; overlapping monitored ranges would
    // silently send the shared span to the wrong prop, so configure()
    // must refuse them.
    PropSpec a;
    a.start_addr = 0x1000;
    a.type_size = 8;
    a.stride = 8;
    a.count = 10;
    PropSpec b;
    b.start_addr = 0x1000;
    b.type_size = 8;
    b.stride = 8;
    b.count = 20;
    ScratchpadController c(2, 4);
    EXPECT_DEATH(c.configure({a, b}, 20), "overlapping monitored");
}

TEST(Controller, AdjacentRangesAreDisjoint)
{
    // Back-to-back ranges (b starts exactly where a ends) must still be
    // accepted: the registry bump-allocates exactly this layout.
    PropSpec a;
    a.start_addr = 0x1000;
    a.type_size = 8;
    a.stride = 8;
    a.count = 10;
    PropSpec b;
    b.start_addr = 0x1000 + 8 * 10;
    b.type_size = 8;
    b.stride = 8;
    b.count = 10;
    ScratchpadController c(2, 4);
    c.configure({a, b}, 10);
    auto r = c.route(b.start_addr);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->prop, 1u);
}

TEST_F(ControllerTest, MemoIsInvalidatedByReconfigure)
{
    // Warm every core's last-hit memo on the old register set...
    for (unsigned core = 0; core < 4; ++core) {
        ASSERT_TRUE(ctrl_.route(0x1000 + 8 * 5, core).has_value());
        ASSERT_TRUE(ctrl_.route(0x10000 + 4 * 5, core).has_value());
    }
    // ...then install registers where the same addresses mean something
    // else. A stale memo slot must not resolve against the old table.
    PropSpec p;
    p.start_addr = 0x10000;
    p.type_size = 8;
    p.stride = 8;
    p.count = 50;
    ctrl_.configure({p}, 50);
    for (unsigned core = 0; core < 4; ++core) {
        EXPECT_FALSE(ctrl_.route(0x1000 + 8 * 5, core).has_value());
        auto r = ctrl_.route(0x10000 + 8 * 5, core);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->vertex, 5u);
        EXPECT_EQ(r->prop, 0u);
    }
}

TEST_F(ControllerTest, MemoNeverChangesTheAnswer)
{
    // The per-core memo is pure acceleration: a core ping-ponging between
    // ranges (worst case for the memo) must see exactly what a fresh
    // controller reports for every probe.
    ScratchpadController fresh(4, 16);
    {
        PropSpec p0;
        p0.start_addr = 0x1000;
        p0.type_size = 8;
        p0.stride = 8;
        p0.count = 1000;
        PropSpec p1;
        p1.start_addr = 0x10000;
        p1.type_size = 4;
        p1.stride = 4;
        p1.count = 1000;
        fresh.configure({p0, p1}, 600);
    }
    for (VertexId v = 0; v < 700; ++v) {
        const std::uint64_t probes[] = {0x1000 + 8 * v, 0x10000 + 4 * v,
                                        0x800 + v};
        for (const std::uint64_t addr : probes) {
            // Same address through a warm memo (core 1) and a cold path
            // (fresh controller, rotating cores).
            auto warm = ctrl_.route(addr, 1);
            auto cold = fresh.route(addr, static_cast<unsigned>(v % 5));
            ASSERT_EQ(warm.has_value(), cold.has_value()) << addr;
            if (warm) {
                EXPECT_EQ(warm->vertex, cold->vertex);
                EXPECT_EQ(warm->prop, cold->prop);
                EXPECT_EQ(warm->home, cold->home);
                EXPECT_EQ(warm->line, cold->line);
            }
        }
    }
}

TEST(Controller, StrideBoundaries)
{
    // Pow2 and non-pow2 strides take different resolve() paths (shift vs.
    // divide); both must agree on the exact edges of a range.
    for (const std::uint32_t stride : {8u, 12u}) {
        PropSpec p;
        p.start_addr = 0x4000;
        p.type_size = 8;
        p.stride = stride;
        p.count = 33;
        ScratchpadController c(4, 16);
        c.configure({p}, 33);

        // First byte of the first vertex and last byte of the last one.
        ASSERT_TRUE(c.route(0x4000).has_value()) << stride;
        auto last = c.route(0x4000 + stride * 32 + 7);
        ASSERT_TRUE(last.has_value()) << stride;
        EXPECT_EQ(last->vertex, 32u);
        // One byte past the final monitored byte falls through. (For the
        // strided case the bytes 8..11 of the last entry are padding.)
        EXPECT_FALSE(c.route(0x4000 + stride * 32 + 8).has_value())
            << stride;
        EXPECT_FALSE(c.route(0x4000 + stride * 33).has_value()) << stride;
        // One byte below the range start falls through.
        EXPECT_FALSE(c.route(0x4000 - 1).has_value()) << stride;
    }
}

TEST(ControllerDeathTest, PartialOverlapInUnsortedOrderIsRejected)
{
    // configure() sorts the registers before the overlap scan; a partial
    // overlap arriving in descending address order must still die.
    PropSpec hi;
    hi.start_addr = 0x2000;
    hi.type_size = 8;
    hi.stride = 8;
    hi.count = 16;
    PropSpec lo;
    lo.start_addr = 0x2000 - 8 * 4;
    lo.type_size = 8;
    lo.stride = 8;
    lo.count = 8; // last 4 entries reach into hi's span
    ScratchpadController c(2, 4);
    EXPECT_DEATH(c.configure({hi, lo}, 16), "overlapping monitored");
}

TEST(Controller, FuzzedBusyTableMatchesMapReference)
{
    // Drive the epoch-stamped busy table and a naive map model with the
    // same deterministic request stream; every observable (start time,
    // busy window, live-entry count, conflicts) must agree.
    ScratchpadController c(4, 16);
    std::map<VertexId, Cycles> ref; // vertex -> busy-until
    std::uint64_t ref_conflicts = 0;

    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    const auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    Cycles now = 0;
    for (int step = 0; step < 20000; ++step) {
        now += next() % 4;
        const VertexId v = static_cast<VertexId>(next() % 97);
        switch (next() % 8) {
          case 0: { // barrier-style retirement
            const Cycles t = now + next() % 32;
            c.retireCompleted(t);
            std::erase_if(ref, [t](const auto &kv) {
                return kv.second <= t;
            });
            break;
          }
          case 1: case 2: { // busy probe
            const auto it = ref.find(v);
            const bool ref_busy = it != ref.end() && it->second > now;
            EXPECT_EQ(c.isVertexBusy(v, now), ref_busy)
                << "step " << step << " vertex " << v;
            break;
          }
          default: { // atomic
            const Cycles duration = 1 + next() % 16;
            const Cycles start = c.beginAtomic(v, now, duration);
            auto [it, fresh] = ref.try_emplace(v, Cycles{0});
            Cycles ref_start = now;
            if (!fresh && it->second > now) {
                ref_start = it->second;
                ++ref_conflicts;
            }
            it->second = ref_start + duration;
            EXPECT_EQ(start, ref_start)
                << "step " << step << " vertex " << v;
            break;
          }
        }
        EXPECT_EQ(c.conflicts(), ref_conflicts) << "step " << step;
    }
    // The controller may keep already-expired entries until the next
    // retirement; the map model drops them eagerly, so compare after a
    // final barrier.
    c.retireCompleted(now + 1000);
    std::erase_if(ref, [&](const auto &kv) {
        return kv.second <= now + 1000;
    });
    EXPECT_EQ(c.busyTableSize(), ref.size());
    EXPECT_TRUE(ref.empty());
}

TEST_F(ControllerTest, RetireCompletedBoundsBusyTable)
{
    // Without pruning the busy table grows by one entry per vertex ever
    // touched by an atomic; retiring at a barrier must drop every entry
    // whose atomic already finished.
    for (VertexId v = 0; v < 100; ++v)
        ctrl_.beginAtomic(v, /*arrival=*/v, /*duration=*/10);
    EXPECT_EQ(ctrl_.busyTableSize(), 100u);

    // At cycle 50, vertices 0..40 (busy until v+10 <= 50) are done.
    ctrl_.retireCompleted(50);
    EXPECT_EQ(ctrl_.busyTableSize(), 59u);
    // Retired entries no longer serialize; in-flight ones still do.
    EXPECT_FALSE(ctrl_.isVertexBusy(0, 50));
    EXPECT_TRUE(ctrl_.isVertexBusy(99, 50));
    EXPECT_EQ(ctrl_.beginAtomic(0, 50, 5), 50u);

    // Once every atomic has drained, the table must be empty again.
    ctrl_.retireCompleted(1000);
    EXPECT_EQ(ctrl_.busyTableSize(), 0u);
}

} // namespace
} // namespace omega
