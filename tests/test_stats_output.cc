/**
 * @file
 * Tests for StatsReport accumulation/dump and the derived metrics the
 * bench harnesses depend on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats_report.hh"
#include "util/json.hh"

namespace omega {
namespace {

StatsReport
sample()
{
    StatsReport r;
    r.cycles = 2'000'000;
    r.instructions = 800'000;
    r.l1_accesses = 1'000'000;
    r.l1_hits = 700'000;
    r.l2_accesses = 300'000;
    r.l2_hits = 150'000;
    r.sp_accesses = 50'000;
    r.dram_read_bytes = 12'000'000;
    r.dram_write_bytes = 4'000'000;
    r.compute_cycles = 100'000;
    r.mem_stall_cycles = 500'000;
    r.atomic_stall_cycles = 300'000;
    r.sync_stall_cycles = 100'000;
    r.vtxprop_accesses = 400'000;
    r.vtxprop_hot_accesses = 300'000;
    return r;
}

TEST(StatsReport, HitRates)
{
    const StatsReport r = sample();
    EXPECT_DOUBLE_EQ(r.l1HitRate(), 0.7);
    EXPECT_DOUBLE_EQ(r.l2HitRate(), 0.5);
    // Last-level storage counts scratchpad accesses as hits.
    EXPECT_DOUBLE_EQ(r.lastLevelHitRate(),
                     (150'000.0 + 50'000.0) / 350'000.0);
}

TEST(StatsReport, HitRatesZeroSafe)
{
    StatsReport r;
    EXPECT_DOUBLE_EQ(r.l1HitRate(), 0.0);
    EXPECT_DOUBLE_EQ(r.lastLevelHitRate(), 0.0);
    EXPECT_DOUBLE_EQ(r.dramBandwidthGBs(2.0), 0.0);
    EXPECT_DOUBLE_EQ(r.memoryBoundFraction(), 0.0);
}

TEST(StatsReport, BandwidthMath)
{
    const StatsReport r = sample();
    // 16 MB over 1 ms (2M cycles at 2 GHz) = 16 GB/s.
    EXPECT_NEAR(r.dramBandwidthGBs(2.0), 16.0, 0.1);
    MachineParams p = MachineParams::baseline(); // 4 x 12 GB/s peak
    EXPECT_NEAR(r.dramBandwidthUtilization(p), 16.0 / 48.0, 0.01);
}

TEST(StatsReport, MemoryBoundFraction)
{
    const StatsReport r = sample();
    EXPECT_DOUBLE_EQ(r.memoryBoundFraction(), 800'000.0 / 1'000'000.0);
}

TEST(StatsReport, HotFraction)
{
    const StatsReport r = sample();
    EXPECT_DOUBLE_EQ(r.hotVertexAccessFraction(), 0.75);
}

TEST(StatsReport, AccumulateSumsCountersNotCycles)
{
    StatsReport a = sample();
    const StatsReport b = sample();
    a.accumulate(b);
    EXPECT_EQ(a.l1_accesses, 2'000'000u);
    EXPECT_EQ(a.dram_read_bytes, 24'000'000u);
    EXPECT_EQ(a.vtxprop_hot_accesses, 600'000u);
    // cycles is a time, not a counter: accumulate leaves it alone.
    EXPECT_EQ(a.cycles, 2'000'000u);
}

TEST(StatsReport, AccumulateTakesMaxForHighWaterMarks)
{
    // Regression: accumulate used to drop pisc_max_busy_cycles and
    // dram_max_queue entirely (they are maxima, not sums, so the plain
    // += loop had skipped them). They must merge as max().
    StatsReport a;
    a.pisc_max_busy_cycles = 700;
    a.dram_max_queue = 40;
    StatsReport b;
    b.pisc_max_busy_cycles = 300;
    b.dram_max_queue = 90;
    a.accumulate(b);
    EXPECT_EQ(a.pisc_max_busy_cycles, 700u);
    EXPECT_EQ(a.dram_max_queue, 90u);
    // And the other direction: a smaller running value is overtaken.
    StatsReport c;
    c.pisc_max_busy_cycles = 9'000;
    a.accumulate(c);
    EXPECT_EQ(a.pisc_max_busy_cycles, 9'000u);
    EXPECT_EQ(a.dram_max_queue, 90u);
}

TEST(StatsReport, FieldsTableCoversTheWholeStruct)
{
    // Every std::uint64_t in StatsReport must be listed exactly once in
    // the reflection table; a forgotten field would silently drop out of
    // accumulate/deltaFrom/dump/writeJson.
    EXPECT_EQ(StatsReport::fields().size() * sizeof(std::uint64_t),
              sizeof(StatsReport));
    // ... and each member pointer must be distinct (member pointers are
    // not orderable, so compare every pair).
    const auto &fields = StatsReport::fields();
    for (std::size_t i = 0; i < fields.size(); ++i) {
        for (std::size_t j = i + 1; j < fields.size(); ++j) {
            EXPECT_FALSE(fields[i].member == fields[j].member)
                << fields[i].name << " aliases " << fields[j].name;
        }
    }
}

TEST(StatsReport, DeltaFromSubtractsSumsAndKeepsMaxima)
{
    StatsReport prev = sample();
    StatsReport cur = sample();
    cur.cycles = 3'000'000;
    cur.l1_accesses += 5'000;
    cur.dram_read_bytes += 64;
    cur.pisc_max_busy_cycles = 1'234;
    const StatsReport d = cur.deltaFrom(prev);
    EXPECT_EQ(d.cycles, 1'000'000u);
    EXPECT_EQ(d.l1_accesses, 5'000u);
    EXPECT_EQ(d.dram_read_bytes, 64u);
    EXPECT_EQ(d.l2_accesses, 0u);
    // Max fields carry the cumulative high-water mark through.
    EXPECT_EQ(d.pisc_max_busy_cycles, 1'234u);
}

TEST(StatsReport, DeltasSumBackToCumulative)
{
    // Chained snapshots: the sum of the deltas equals the last cumulative
    // report (the interval-series accounting identity).
    StatsReport s1;
    s1.cycles = 100;
    s1.l1_accesses = 10;
    StatsReport s2 = s1;
    s2.cycles = 250;
    s2.l1_accesses = 17;
    s2.dram_reads = 3;
    StatsReport total;
    total.accumulate(s1.deltaFrom(StatsReport{}));
    total.accumulate(s2.deltaFrom(s1));
    EXPECT_EQ(total.l1_accesses, s2.l1_accesses);
    EXPECT_EQ(total.dram_reads, s2.dram_reads);
}

TEST(StatsReport, DumpContainsEveryHeadlineCounter)
{
    std::ostringstream os;
    sample().dump(os, "m");
    const std::string out = os.str();
    for (const char *key :
         {"m.cycles", "m.l1_accesses", "m.l2_hits", "m.sp_accesses",
          "m.dram_read_bytes", "m.atomics_total", "m.mem_stall_cycles",
          "m.vtxprop_hot_accesses", "m.onchip_bytes",
          // Regression: the max-type counters used to be missing here.
          "m.pisc_max_busy_cycles", "m.dram_max_queue"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(StatsReport, DumpIsMachineParsable)
{
    std::ostringstream os;
    sample().dump(os, "sim");
    std::istringstream is(os.str());
    std::string name;
    std::uint64_t value;
    int lines = 0;
    while (is >> name >> value) {
        ++lines;
        EXPECT_EQ(name.rfind("sim.", 0), 0u) << name;
    }
    EXPECT_GT(lines, 25);
}

} // namespace
} // namespace omega
