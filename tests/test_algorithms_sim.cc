/**
 * @file
 * Algorithms driven through the simulated machines: functional results
 * must be unchanged, counters must be consistent, and the OMEGA machine
 * must show the paper's qualitative behaviour on power-law graphs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.hh"
#include "algorithms/bfs.hh"
#include "algorithms/pagerank.hh"
#include "algorithms/reference.hh"
#include "algorithms/sssp.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"
#include "graph/reorder.hh"
#include "omega/omega_machine.hh"
#include "sim/baseline_machine.hh"
#include "util/rng.hh"

namespace omega {
namespace {

constexpr double kScale = 1.0 / 64.0;

Graph
powerLawGraph(std::uint64_t seed = 11)
{
    Rng rng(seed);
    Graph g = buildGraph(1 << 11, generateRmat(11, 12, rng));
    return reorderGraph(g, ReorderKind::InDegreeNthElement);
}

TEST(AlgoSim, BfsResultIdenticalOnBothMachines)
{
    Graph g = powerLawGraph();
    const VertexId root = defaultRoot(g);
    auto pure = runBfs(g, root, nullptr);

    BaselineMachine base(MachineParams::baseline().scaledCapacities(kScale));
    auto on_base = runBfs(g, root, &base);
    OmegaMachine om(MachineParams::omega().scaledCapacities(kScale));
    auto on_omega = runBfs(g, root, &om);

    EXPECT_EQ(pure.reached, on_base.reached);
    EXPECT_EQ(pure.reached, on_omega.reached);
    EXPECT_EQ(pure.rounds, on_omega.rounds);
    // Reachability sets identical (parent choice may differ with order).
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(pure.parent[v] == -1, on_base.parent[v] == -1);
        EXPECT_EQ(pure.parent[v] == -1, on_omega.parent[v] == -1);
    }
}

TEST(AlgoSim, SsspExactOnBothMachines)
{
    Graph g = powerLawGraph(5);
    const VertexId root = defaultRoot(g);
    auto ref = refDijkstra(g, root);

    BaselineMachine base(MachineParams::baseline().scaledCapacities(kScale));
    auto on_base = runSssp(g, root, &base);
    OmegaMachine om(MachineParams::omega().scaledCapacities(kScale));
    auto on_omega = runSssp(g, root, &om);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(on_base.dist[v], ref[v]);
        ASSERT_EQ(on_omega.dist[v], ref[v]);
    }
}

TEST(AlgoSim, CyclesAreDeterministic)
{
    Graph g = powerLawGraph(7);
    Cycles c1;
    Cycles c2;
    {
        BaselineMachine m(
            MachineParams::baseline().scaledCapacities(kScale));
        c1 = runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &m);
    }
    {
        BaselineMachine m(
            MachineParams::baseline().scaledCapacities(kScale));
        c2 = runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &m);
    }
    EXPECT_EQ(c1, c2);
    EXPECT_GT(c1, 0u);
}

TEST(AlgoSim, OmegaSpeedsUpPageRankOnPowerLaw)
{
    Graph g = powerLawGraph(3);
    BaselineMachine base(MachineParams::baseline().scaledCapacities(kScale));
    OmegaMachine om(MachineParams::omega().scaledCapacities(kScale));
    const Cycles cb =
        runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &base);
    const Cycles co = runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &om);
    EXPECT_GT(static_cast<double>(cb) / static_cast<double>(co), 1.3);
}

TEST(AlgoSim, OmegaOffloadsMostAtomicsOnPowerLaw)
{
    Graph g = powerLawGraph(3);
    OmegaMachine om(MachineParams::omega().scaledCapacities(kScale));
    runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &om);
    const StatsReport r = om.report();
    EXPECT_GT(r.atomics_total, 0u);
    EXPECT_GT(static_cast<double>(r.atomics_offloaded) /
                  static_cast<double>(r.atomics_total),
              0.9);
}

TEST(AlgoSim, HotFractionHighOnPowerLawLowOnRoad)
{
    Graph pl = powerLawGraph(9);
    BaselineMachine m1(MachineParams::baseline().scaledCapacities(kScale));
    runAlgorithmOnMachine(AlgorithmKind::PageRank, pl, &m1);
    const double hot_pl = m1.report().hotVertexAccessFraction();
    EXPECT_GT(hot_pl, 0.6); // paper Fig 4(b): >75% on natural graphs

    Rng rng(2);
    Graph road = buildGraph(48 * 48,
                            generateRoadMesh(48, 48, 0.1, 0.05, rng),
                            {.symmetrize = true});
    road = reorderGraph(road, ReorderKind::InDegreeNthElement);
    BaselineMachine m2(MachineParams::baseline().scaledCapacities(kScale));
    runAlgorithmOnMachine(AlgorithmKind::PageRank, road, &m2);
    const double hot_road = m2.report().hotVertexAccessFraction();
    EXPECT_LT(hot_road, 0.45); // ~20% + epsilon on uniform graphs
}

TEST(AlgoSim, EveryAlgorithmRunsOnBothMachines)
{
    Rng rng(4);
    Graph g = buildGraph(1 << 9, generateRmat(9, 8, rng),
                         {.symmetrize = true});
    g = reorderGraph(g, ReorderKind::InDegreeNthElement);
    for (const auto &meta : allAlgorithms()) {
        BaselineMachine base(
            MachineParams::baseline().scaledCapacities(kScale));
        OmegaMachine om(MachineParams::omega().scaledCapacities(kScale));
        const Cycles cb = runAlgorithmOnMachine(meta.kind, g, &base);
        const Cycles co = runAlgorithmOnMachine(meta.kind, g, &om);
        EXPECT_GT(cb, 0u) << meta.name;
        EXPECT_GT(co, 0u) << meta.name;
        EXPECT_GT(base.report().l1_accesses, 0u) << meta.name;
    }
}

TEST(AlgoSim, SrcPropReadsHitSvbForSssp)
{
    // Sparse frontiers scatter sources across cores regardless of their
    // scratchpad home, so the per-edge ShortestLen re-reads go remote —
    // the paper's Fig-11 case. A road mesh has a high diameter and stays
    // in sparse mode for many rounds.
    Rng rng(2);
    Graph g = buildGraph(40 * 40, generateRoadMesh(40, 40, 0.1, 0.05, rng),
                         {.symmetrize = true});
    g = reorderGraph(g, ReorderKind::InDegreeNthElement);
    OmegaMachine om(MachineParams::omega().scaledCapacities(kScale));
    runAlgorithmOnMachine(AlgorithmKind::SSSP, g, &om);
    const StatsReport r = om.report();
    EXPECT_GT(r.svb_hits + r.svb_misses, 0u);
    // The first remote read per (source, iteration) misses; the per-edge
    // repeats hit. Degree ~4 means a hit rate around 2/3.
    EXPECT_GT(static_cast<double>(r.svb_hits) /
                  static_cast<double>(r.svb_hits + r.svb_misses),
              0.4);
}

TEST(AlgoSim, DenseModeKeepsSourceReadsLocal)
{
    // Section V.D: with the scratchpad chunk matched to the schedule
    // chunk, the dense-forward sweep reads each source's vtxProp from
    // the LOCAL scratchpad.
    Graph g = powerLawGraph(6);
    OmegaMachine om(MachineParams::omega().scaledCapacities(kScale));
    runAlgorithmOnMachine(AlgorithmKind::SSSP, g, &om);
    const StatsReport r = om.report();
    EXPECT_GT(r.sp_local, 0u);
    EXPECT_GT(static_cast<double>(r.sp_local),
              0.9 * static_cast<double>(r.sp_local + r.sp_remote));
}

TEST(AlgoSim, StatsInternallyConsistent)
{
    Graph g = powerLawGraph(8);
    OmegaMachine om(MachineParams::omega().scaledCapacities(kScale));
    runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &om);
    const StatsReport r = om.report();
    EXPECT_LE(r.l1_hits, r.l1_accesses);
    EXPECT_LE(r.l2_hits, r.l2_accesses);
    EXPECT_LE(r.vtxprop_hot_accesses, r.vtxprop_accesses);
    EXPECT_EQ(r.atomics_total, r.atomics_offloaded + r.atomics_on_core);
    EXPECT_EQ(r.pisc_ops, r.atomics_offloaded);
    EXPECT_LE(r.sp_local + r.sp_remote, r.sp_accesses + r.pisc_ops);
    EXPECT_GE(r.cycles,
              (r.compute_cycles + r.mem_stall_cycles +
               r.atomic_stall_cycles + r.sync_stall_cycles) /
                  (om.params().num_cores + 1));
}

TEST(AlgoSim, ScratchpadOnlyIsSlowerThanFullOmega)
{
    // Section X.A: scratchpads without PISCs forgo most of the benefit.
    Graph g = powerLawGraph(3);
    OmegaMachine full(MachineParams::omega().scaledCapacities(kScale));
    OmegaMachine sp_only(
        MachineParams::omegaScratchpadOnly().scaledCapacities(kScale));
    const Cycles cf =
        runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &full);
    const Cycles cs =
        runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &sp_only);
    EXPECT_LT(cf, cs);
}

TEST(AlgoSim, MemoryBoundFractionIsHighOnBaseline)
{
    // Fig 3: graph workloads are ~70% memory bound on the baseline. The
    // graph must exceed the scaled LLC for the off-chip regime to show.
    Rng rng(13);
    Graph g = buildGraph(1 << 13, generateRmat(13, 12, rng));
    g = reorderGraph(g, ReorderKind::InDegreeNthElement);
    BaselineMachine base(
        MachineParams::baseline().scaledCapacities(1.0 / 512));
    runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &base);
    EXPECT_GT(base.report().memoryBoundFraction(), 0.5);
}

} // namespace
} // namespace omega
