/**
 * @file
 * Unit tests for the util module: RNG, stats, tables, strings.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/rng.hh"
#include "util/stats.hh"
#include "util/string_utils.hh"
#include "util/table.hh"

namespace omega {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.nextBounded(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(7);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.nextBounded(8)];
    for (int c : seen)
        EXPECT_GT(c, 800); // roughly uniform
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliProbability)
{
    Rng rng(9);
    int trues = 0;
    for (int i = 0; i < 10000; ++i)
        trues += rng.nextBool(0.3);
    EXPECT_NEAR(trues / 10000.0, 0.3, 0.03);
}

TEST(Rng, ParetoAboveMinimum)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.nextPareto(2.0, 1.5), 1.5);
}

TEST(Rng, WorksWithStdShuffle)
{
    Rng rng(11);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::shuffle(v.begin(), v.end(), rng);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BasicMoments)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(i);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.5);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(10.5);
    h.sample(3.5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
}

TEST(Histogram, QuantileApproximation)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Histogram, QuantileEmptyHistogramIsZero)
{
    const Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileExtremesClampToRange)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    // p=0 resolves to the first populated bucket's midpoint; p=1 (and
    // anything beyond, after clamping) to the largest observed sample.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.0);
    EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
}

TEST(Histogram, QuantileAllUnderflow)
{
    Histogram h(10.0, 20.0, 5);
    for (int i = 0; i < 4; ++i)
        h.sample(-1.0);
    // Every sample sits below the range: the underflow mass reports the
    // observed minimum, not lo (which would overstate it by 11).
    EXPECT_DOUBLE_EQ(h.quantile(0.0), -1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), -1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), -1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), -1.0);
    EXPECT_EQ(h.underflow(), 4u);
}

TEST(Histogram, QuantileAllOverflow)
{
    Histogram h(0.0, 10.0, 5);
    for (int i = 0; i < 4; ++i)
        h.sample(99.0);
    // Every sample sits above the range: the overflow mass reports the
    // observed maximum, not hi (which would understate it by 89).
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 99.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 99.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.0);
    EXPECT_EQ(h.overflow(), 4u);
}

TEST(Histogram, QuantileMixedUnderflowAndOverflow)
{
    Histogram h(10.0, 20.0, 5);
    h.sample(2.0);  // underflow
    h.sample(3.0);  // underflow
    h.sample(15.0); // interior
    h.sample(50.0); // overflow
    // Quantiles walk min -> buckets -> max as p sweeps the mass.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);  // underflow -> min
    EXPECT_DOUBLE_EQ(h.quantile(0.3), 2.0);  // still in underflow
    EXPECT_DOUBLE_EQ(h.quantile(0.6), 15.0); // interior bucket midpoint
    EXPECT_DOUBLE_EQ(h.quantile(0.9), 50.0); // overflow -> max
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 50.0);
}

TEST(Histogram, QuantileSingleBucket)
{
    Histogram h(0.0, 10.0, 1);
    h.sample(1.0);
    h.sample(9.0);
    // One bucket: every interior quantile is its midpoint; p=1 is the
    // exact observed maximum.
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.75), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 9.0);
}

TEST(Histogram, QuantileLogSpacedInterior)
{
    // Buckets at decade boundaries: [1,10), [10,100), [100,1000).
    Histogram h = Histogram::logSpaced(1.0, 1000.0, 3);
    for (int i = 0; i < 8; ++i)
        h.sample(5.0);
    h.sample(50.0);
    h.sample(500.0);
    // 80% of the mass is in the first decade; its geometric midpoint is
    // 10^0.5. The tail quantiles land in the later decades.
    EXPECT_NEAR(h.quantile(0.5), std::pow(10.0, 0.5), 1e-9);
    EXPECT_NEAR(h.quantile(0.85), std::pow(10.0, 1.5), 1e-9);
    EXPECT_NEAR(h.quantile(0.95), std::pow(10.0, 2.5), 1e-9);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 500.0);
}

TEST(Histogram, QuantileLogSpacedUnderOverflow)
{
    Histogram h = Histogram::logSpaced(10.0, 1000.0, 2);
    h.sample(0.5);    // below lo: underflow
    h.sample(100.0);  // interior
    h.sample(5000.0); // above hi: overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);     // underflow -> min
    EXPECT_NEAR(h.quantile(0.5), std::pow(10.0, 2.5), 1e-9);
    EXPECT_DOUBLE_EQ(h.quantile(0.9), 5000.0);  // overflow -> max
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 5000.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(0.0, 1.0, 4);
    h.sample(0.5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(2), 0u);
}

TEST(StatGroup, DumpAndLookup)
{
    StatGroup root("machine");
    Counter c;
    c += 42;
    double util = 0.5;
    root.addCounter("accesses", &c, "number of accesses");
    root.addScalar("utilization", &util);

    StatGroup child("l2");
    Counter hits;
    hits += 7;
    child.addCounter("hits", &hits);
    root.addChild(&child);

    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("machine.accesses"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("machine.l2.hits"), std::string::npos);
    EXPECT_NE(out.find("# number of accesses"), std::string::npos);

    EXPECT_DOUBLE_EQ(root.lookup("accesses"), 42.0);
    EXPECT_DOUBLE_EQ(root.lookup("l2.hits"), 7.0);
    EXPECT_TRUE(std::isnan(root.lookup("nope")));
}

TEST(StatGroup, LookupMissingPathsAreNaN)
{
    StatGroup root("machine");
    Counter c;
    root.addCounter("accesses", &c);
    StatGroup child("l2");
    Counter hits;
    child.addCounter("hits", &hits);
    root.addChild(&child);

    EXPECT_TRUE(std::isnan(root.lookup("missing")));
    EXPECT_TRUE(std::isnan(root.lookup("l2.missing")));
    EXPECT_TRUE(std::isnan(root.lookup("nogroup.hits")));
    EXPECT_TRUE(std::isnan(root.lookup("l2.hits.deeper")));
    // The valid paths still resolve.
    EXPECT_DOUBLE_EQ(root.lookup("accesses"), 0.0);
    EXPECT_DOUBLE_EQ(root.lookup("l2.hits"), 0.0);
}

using StatGroupDeathTest = ::testing::Test;

TEST(StatGroupDeathTest, DuplicateEntryRegistrationAborts)
{
    StatGroup g("m");
    Counter a;
    std::uint64_t b = 0;
    g.addCounter("x", &a);
    EXPECT_DEATH(g.addCounter("x", &a), "duplicate stat registration");
    // Collisions across entry kinds are just as fatal: the name is the
    // namespace, not the (name, kind) pair.
    EXPECT_DEATH(g.addScalar("x", &b), "duplicate stat registration");
}

TEST(StatGroupDeathTest, DuplicateChildGroupAborts)
{
    StatGroup root("m");
    StatGroup c1("sub");
    StatGroup c2("sub");
    root.addChild(&c1);
    EXPECT_DEATH(root.addChild(&c2), "duplicate stat child group");
}

TEST(Table, FormatsAlignedColumns)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(std::uint64_t(10));
    t.row().cell("b").cell(3.14159, 2);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.at(1, 1), "3.14");

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, CsvQuotesCommas)
{
    Table t({"a", "b"});
    t.row().cell("x,y").cell("plain");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Formatters, Helpers)
{
    EXPECT_EQ(formatDouble(1.005, 1), "1.0");
    EXPECT_EQ(formatSpeedup(2.0), "2.00x");
    EXPECT_EQ(formatPercent(0.421, 1), "42.1%");
    EXPECT_EQ(formatBytes(1024), "1KB");
    EXPECT_EQ(formatBytes(16ull * 1024 * 1024), "16MB");
    EXPECT_EQ(formatBytes(1536), "1.5KB");
}

TEST(Strings, SplitTrimJoin)
{
    EXPECT_EQ(split("a,b,,c", ','),
              (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(trim("  hi \t"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_EQ(join({"x", "y"}, "-"), "x-y");
}

} // namespace
} // namespace omega
