/**
 * @file
 * Functional correctness of all eight algorithms against serial
 * references, parameterized over graph families and seeds.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "algorithms/algorithms.hh"
#include "algorithms/bc.hh"
#include "algorithms/bfs.hh"
#include "algorithms/components.hh"
#include "algorithms/kcore.hh"
#include "algorithms/pagerank.hh"
#include "algorithms/radii.hh"
#include "algorithms/reference.hh"
#include "algorithms/sssp.hh"
#include "algorithms/triangle.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"
#include "graph/reorder.hh"
#include "omega/omega_machine.hh"
#include "sim/baseline_machine.hh"
#include "util/rng.hh"

namespace omega {
namespace {

enum class Family { Rmat, Road, Ba };

struct Case
{
    Family family;
    std::uint64_t seed;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    const char *fam = info.param.family == Family::Rmat  ? "rmat"
                      : info.param.family == Family::Road ? "road"
                                                          : "ba";
    return std::string(fam) + "_seed" + std::to_string(info.param.seed);
}

Graph
makeGraph(const Case &c, bool symmetric)
{
    Rng rng(c.seed);
    EdgeList edges;
    VertexId n = 0;
    switch (c.family) {
      case Family::Rmat:
        n = 1 << 10;
        edges = generateRmat(10, 8, rng);
        break;
      case Family::Road:
        n = 30 * 34;
        edges = generateRoadMesh(30, 34, 0.1, 0.05, rng);
        break;
      case Family::Ba:
        n = 800;
        edges = generateBarabasiAlbert(800, 3, rng);
        break;
    }
    BuildOptions opts;
    opts.symmetrize = symmetric || c.family != Family::Rmat;
    return buildGraph(n, std::move(edges), opts);
}

class AlgoCorrectness : public ::testing::TestWithParam<Case>
{
};

TEST_P(AlgoCorrectness, PageRankMatchesReference)
{
    Graph g = makeGraph(GetParam(), false);
    auto pr = runPageRank(g, nullptr, 10);
    auto ref = refPageRank(g, 10, 0.85);
    double max_err = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        max_err = std::max(max_err, std::abs(pr.rank[v] - ref[v]));
    EXPECT_LT(max_err, 1e-9);
}

TEST_P(AlgoCorrectness, PageRankSumsToOneWithoutSinks)
{
    // When every vertex has out-edges the total rank mass is conserved
    // at 1 (isolated vertices leak mass, so skip graphs that have any).
    Graph g = makeGraph(GetParam(), true);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (g.outDegree(v) == 0)
            GTEST_SKIP() << "graph has isolated vertices";
    }
    auto pr = runPageRank(g, nullptr, 8);
    double sum = 0.0;
    for (double r : pr.rank)
        sum += r;
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_P(AlgoCorrectness, BfsParentsFormValidTree)
{
    Graph g = makeGraph(GetParam(), false);
    const VertexId root = defaultRoot(g);
    auto bfs = runBfs(g, root);
    auto depth = refBfsDepths(g, root);

    VertexId reached = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        // Reachability agrees with the reference.
        ASSERT_EQ(bfs.parent[v] != -1, depth[v] != -1) << v;
        if (bfs.parent[v] == -1)
            continue;
        ++reached;
        if (v == root) {
            EXPECT_EQ(bfs.parent[v], static_cast<std::int32_t>(root));
            continue;
        }
        // Parent is exactly one BFS level above.
        const auto p = static_cast<VertexId>(bfs.parent[v]);
        EXPECT_EQ(depth[v], depth[p] + 1) << v;
        // And the edge parent->v exists.
        const auto nbrs = g.outNeighbors(p);
        EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end());
    }
    EXPECT_EQ(reached, bfs.reached);
    // Round count equals the max depth.
    std::int32_t max_depth = 0;
    for (auto d : depth)
        max_depth = std::max(max_depth, d);
    EXPECT_EQ(bfs.rounds, static_cast<unsigned>(max_depth) + 1);
}

TEST_P(AlgoCorrectness, SsspMatchesDijkstra)
{
    Graph g = makeGraph(GetParam(), false);
    const VertexId root = defaultRoot(g);
    auto sp = runSssp(g, root);
    auto ref = refDijkstra(g, root);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(sp.dist[v], ref[v]) << "vertex " << v;
}

TEST_P(AlgoCorrectness, BcForwardMatchesReference)
{
    Graph g = makeGraph(GetParam(), false);
    const VertexId root = defaultRoot(g);
    auto bc = runBcForward(g, root);
    auto [sigma, depth] = refBcForward(g, root);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(bc.depth[v], depth[v]) << v;
        ASSERT_NEAR(bc.sigma[v], sigma[v], 1e-6) << v;
    }
}

TEST_P(AlgoCorrectness, ComponentsMatchReference)
{
    Graph g = makeGraph(GetParam(), true);
    auto cc = runComponents(g);
    auto ref = refComponents(g);
    // Same partition: labels must induce identical equivalence classes.
    std::set<std::uint32_t> ours;
    std::set<std::uint32_t> theirs;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        ours.insert(cc.label[v]);
        theirs.insert(ref[v]);
        // Min-label propagation also yields the min member id.
        ASSERT_EQ(cc.label[v], ref[v]) << v;
    }
    EXPECT_EQ(cc.num_components, theirs.size());
}

TEST_P(AlgoCorrectness, TriangleCountMatchesReference)
{
    Graph g = makeGraph(GetParam(), true);
    auto tc = runTriangleCount(g);
    EXPECT_EQ(tc.triangles, refTriangles(g));
}

TEST_P(AlgoCorrectness, CorenessMatchesReference)
{
    Graph g = makeGraph(GetParam(), true);
    auto kc = runKCore(g);
    auto ref = refCoreness(g);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(kc.coreness[v], ref[v]) << v;
    std::int32_t max_core = 0;
    for (auto c : ref)
        max_core = std::max(max_core, c);
    EXPECT_EQ(kc.degeneracy, max_core);
}

/** Replicate runRadii's source sampling (same RNG recipe). */
std::vector<VertexId>
sampledSources(VertexId n, unsigned sample, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<VertexId> sources;
    while (sources.size() < sample) {
        const auto v = static_cast<VertexId>(rng.nextBounded(n));
        if (std::find(sources.begin(), sources.end(), v) == sources.end())
            sources.push_back(v);
    }
    return sources;
}

TEST_P(AlgoCorrectness, RadiiSingleSourceEqualsBfsDepth)
{
    Graph g = makeGraph(GetParam(), true);
    const std::uint64_t seed = GetParam().seed;
    RadiiResult r = runRadii(g, nullptr, 1, seed);
    const VertexId src = sampledSources(g.numVertices(), 1, seed)[0];
    auto depth = refBfsDepths(g, src);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(r.radii[v], depth[v]) << v;
}

TEST_P(AlgoCorrectness, RadiiMultiSourceIsMaxOfDepths)
{
    Graph g = makeGraph(GetParam(), true);
    const std::uint64_t seed = GetParam().seed + 3;
    RadiiResult r = runRadii(g, nullptr, 8, seed);
    const auto sources = sampledSources(g.numVertices(), 8, seed);
    // The estimate equals the max BFS depth over the sources reaching v.
    std::vector<std::int32_t> expect(g.numVertices(), -1);
    for (VertexId s : sources) {
        auto depth = refBfsDepths(g, s);
        for (VertexId v = 0; v < g.numVertices(); ++v)
            expect[v] = std::max(expect[v], depth[v]);
    }
    std::int32_t max_expect = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(r.radii[v], expect[v]) << v;
        max_expect = std::max(max_expect, expect[v]);
    }
    EXPECT_EQ(r.max_radius, max_expect);
}

INSTANTIATE_TEST_SUITE_P(
    Families, AlgoCorrectness,
    ::testing::Values(Case{Family::Rmat, 1}, Case{Family::Rmat, 2},
                      Case{Family::Rmat, 3}, Case{Family::Road, 1},
                      Case{Family::Road, 2}, Case{Family::Ba, 1},
                      Case{Family::Ba, 2}),
    caseName);

TEST(AlgorithmRegistry, HasEightEntriesWithTable2Metadata)
{
    const auto &all = allAlgorithms();
    ASSERT_EQ(all.size(), 8u);
    EXPECT_EQ(algorithmMeta(AlgorithmKind::PageRank).vtxprop_bytes, 8u);
    EXPECT_EQ(algorithmMeta(AlgorithmKind::BFS).vtxprop_bytes, 4u);
    EXPECT_EQ(algorithmMeta(AlgorithmKind::Radii).vtxprop_bytes, 12u);
    EXPECT_EQ(algorithmMeta(AlgorithmKind::Radii).num_props, 3u);
    EXPECT_TRUE(algorithmMeta(AlgorithmKind::SSSP).reads_src_prop);
    EXPECT_FALSE(algorithmMeta(AlgorithmKind::PageRank).has_active_list);
    EXPECT_TRUE(algorithmMeta(AlgorithmKind::TC).needs_symmetric);
}

TEST(AlgorithmRegistry, FindByName)
{
    EXPECT_EQ(*findAlgorithm("pagerank"), AlgorithmKind::PageRank);
    EXPECT_EQ(*findAlgorithm("BFS"), AlgorithmKind::BFS);
    EXPECT_FALSE(findAlgorithm("nope").has_value());
}

TEST(AlgorithmRegistry, DefaultRootHasMaxOutDegree)
{
    EdgeList edges{{3, 0, 1}, {3, 1, 1}, {3, 2, 1}, {0, 1, 1}};
    Graph g = buildGraph(4, std::move(edges));
    EXPECT_EQ(defaultRoot(g), 3u);
}

TEST_P(AlgoCorrectness, BrandesMatchesReference)
{
    Graph g = makeGraph(GetParam(), true);
    const VertexId root = defaultRoot(g);
    auto full = runBcBrandes(g, root);
    auto ref = refBrandes(g, root);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_NEAR(full.centrality[v], ref[v], 1e-6) << v;
    // The root itself has zero dependency, and unreachable vertices too.
    EXPECT_DOUBLE_EQ(full.centrality[root], 0.0);
}

TEST(Brandes, RunsOnBothMachines)
{
    Rng rng(21);
    Graph g = buildGraph(1 << 9, generateRmat(9, 8, rng),
                         {.symmetrize = true});
    g = reorderGraph(g, ReorderKind::InDegreeNthElement);
    const VertexId root = defaultRoot(g);
    auto pure = runBcBrandes(g, root, nullptr);
    OmegaMachine om(MachineParams::omega().scaledCapacities(1.0 / 64));
    auto on_omega = runBcBrandes(g, root, &om);
    EXPECT_GT(om.cycles(), 0u);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_NEAR(pure.centrality[v], on_omega.centrality[v], 1e-9);
}

TEST(PullMode, PageRankPullMatchesReference)
{
    Rng rng(17);
    Graph g = buildGraph(1 << 10, generateRmat(10, 8, rng));
    auto pull = runPageRankPull(g, nullptr, 6);
    auto ref = refPageRank(g, 6, 0.85);
    double max_err = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        max_err = std::max(max_err, std::abs(pull.rank[v] - ref[v]));
    EXPECT_LT(max_err, 1e-9);
}

TEST(PullMode, PullHasNoAtomicsOnAnyMachine)
{
    Rng rng(18);
    Graph g = buildGraph(1 << 9, generateRmat(9, 8, rng));
    g = reorderGraph(g, ReorderKind::InDegreeNthElement);
    BaselineMachine base(MachineParams::baseline().scaledCapacities(1.0 / 64));
    runPageRankPull(g, &base, 1);
    EXPECT_EQ(base.report().atomics_total, 0u);
    EXPECT_GT(base.cycles(), 0u);

    OmegaMachine om(MachineParams::omega().scaledCapacities(1.0 / 64));
    runPageRankPull(g, &om, 1);
    EXPECT_EQ(om.report().atomics_total, 0u);
    // The random source reads route to the scratchpads instead.
    EXPECT_GT(om.report().sp_accesses, g.numArcs() / 2);
}

TEST(PullMode, PushAndPullAgreeThroughMachines)
{
    Rng rng(19);
    Graph g = buildGraph(1 << 9, generateRmat(9, 8, rng));
    OmegaMachine om(MachineParams::omega().scaledCapacities(1.0 / 64));
    auto pull = runPageRankPull(g, &om, 3);
    auto push = runPageRank(g, nullptr, 3);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_NEAR(pull.rank[v], push.rank[v], 1e-9) << v;
}

TEST(UpdateFnFactories, MatchTable2AtomicTypes)
{
    EXPECT_EQ(pageRankUpdateFn().steps[0].op, PiscAluOp::FpAdd);
    EXPECT_EQ(bfsUpdateFn().steps[0].op, PiscAluOp::UnsignedComp);
    EXPECT_EQ(ssspUpdateFn().steps[0].op, PiscAluOp::SignedMin);
    EXPECT_EQ(ccUpdateFn().steps[0].op, PiscAluOp::SignedMin);
    EXPECT_EQ(kcoreUpdateFn().steps[0].op, PiscAluOp::SignedAdd);
    EXPECT_TRUE(ssspUpdateFn().reads_src_prop);
    EXPECT_FALSE(bfsUpdateFn().reads_src_prop);
}

} // namespace
} // namespace omega
