/**
 * @file
 * Tests for the dynamic-graph support (paper section IX).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.hh"
#include "graph/dynamic.hh"
#include "graph/generators.hh"
#include "graph/reorder.hh"
#include "util/rng.hh"

namespace omega {
namespace {

DynamicGraph
smallDynamic()
{
    EdgeList arcs{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 0, 1}};
    return DynamicGraph(4, std::move(arcs));
}

TEST(DynamicGraph, RebuildWithoutUpdatesPreservesArcs)
{
    DynamicGraph dyn = smallDynamic();
    const Graph &g = dyn.rebuild();
    EXPECT_EQ(g.numArcs(), 4u);
    EXPECT_FALSE(dyn.dirty());
}

TEST(DynamicGraph, InsertionsApplyAtRebuild)
{
    DynamicGraph dyn = smallDynamic();
    dyn.rebuild();
    dyn.addEdge(Edge{0, 2, 5});
    EXPECT_TRUE(dyn.dirty());
    EXPECT_EQ(dyn.pendingInsertions(), 1u);
    const Graph &g = dyn.rebuild();
    EXPECT_EQ(g.numArcs(), 5u);
    const auto nbrs = g.outNeighbors(0);
    EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), 2u) != nbrs.end());
}

TEST(DynamicGraph, RemovalsApplyAtRebuild)
{
    DynamicGraph dyn = smallDynamic();
    dyn.removeEdge(1, 2);
    const Graph &g = dyn.rebuild();
    EXPECT_EQ(g.numArcs(), 3u);
    EXPECT_EQ(g.outDegree(1), 0u);
}

TEST(DynamicGraph, RemoveThenAddSameArc)
{
    DynamicGraph dyn = smallDynamic();
    dyn.removeEdge(0, 1);
    dyn.addEdge(Edge{0, 1, 9});
    const Graph &g = dyn.rebuild();
    EXPECT_EQ(g.numArcs(), 4u);
    EXPECT_EQ(g.outWeights(0)[0], 9);
}

TEST(DynamicGraph, CurrentRequiresRebuild)
{
    DynamicGraph dyn = smallDynamic();
    dyn.rebuild();
    EXPECT_EQ(dyn.current().numArcs(), 4u);
}

TEST(DynamicGraph, FromGraphRoundTrip)
{
    Rng rng(4);
    Graph g = buildGraph(1 << 8, generateRmat(8, 6, rng));
    DynamicGraph dyn(g);
    const Graph &back = dyn.rebuild();
    EXPECT_EQ(back.numArcs(), g.numArcs());
    EXPECT_EQ(back.numVertices(), g.numVertices());
}

TEST(DynamicGraph, ReorderedRebuildRestoresHotPrefix)
{
    Rng rng(6);
    Graph g = buildGraph(1 << 10, generateRmat(10, 8, rng));
    DynamicGraph dyn(reorderGraph(g, ReorderKind::InDegreeNthElement));
    dyn.rebuild();
    const double before = prefixInEdgeCoverage(dyn.current(), 0.2);

    // Shift popularity to formerly-cold vertices.
    const VertexId n = dyn.numVertices();
    for (int i = 0; i < 5000; ++i) {
        const auto src = static_cast<VertexId>(rng.nextBounded(n));
        const auto hub =
            static_cast<VertexId>(n - 1 - rng.nextBounded(16));
        dyn.addEdge(Edge{src, hub, 1});
    }
    const double stale = prefixInEdgeCoverage(dyn.rebuild(), 0.2);
    EXPECT_LT(stale, before);
    const double fresh =
        prefixInEdgeCoverage(dyn.rebuildReordered(), 0.2);
    EXPECT_GT(fresh, stale + 0.05);
}

TEST(DynamicGraph, ReorderedRebuildIsARenumbering)
{
    // Renumbering preserves the arc count and the degree multiset.
    Rng rng(8);
    Graph g = buildGraph(1 << 8, generateRmat(8, 8, rng));
    DynamicGraph dyn(g);
    const Graph &renamed = dyn.rebuildReordered(ReorderKind::InDegreeSort);
    EXPECT_EQ(renamed.numArcs(), g.numArcs());
    EXPECT_TRUE(renamed.validate());

    std::vector<EdgeId> deg_before;
    std::vector<EdgeId> deg_after;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        deg_before.push_back(g.inDegree(v));
        deg_after.push_back(renamed.inDegree(v));
    }
    std::sort(deg_before.begin(), deg_before.end());
    std::sort(deg_after.begin(), deg_after.end());
    EXPECT_EQ(deg_before, deg_after);
    // And the hot-first invariant holds after the rename.
    for (VertexId v = 1; v < renamed.numVertices(); ++v)
        ASSERT_GE(renamed.inDegree(v - 1), renamed.inDegree(v));
}

} // namespace
} // namespace omega
