/**
 * @file
 * Unit tests for the set-associative cache array.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace omega {
namespace {

TEST(CacheArray, GeometryFromSize)
{
    CacheArray c(32 * 1024, 8, 64);
    EXPECT_EQ(c.lineBytes(), 64u);
    EXPECT_EQ(c.numWays(), 8u);
    EXPECT_EQ(c.numSets(), 64u);
    EXPECT_EQ(c.sizeBytes(), 32u * 1024u);
}

TEST(CacheArray, TinySizeStillHasOneSet)
{
    CacheArray c(64, 8, 64);
    EXPECT_EQ(c.numSets(), 1u);
    EXPECT_EQ(c.sizeBytes(), 8u * 64u);
}

TEST(CacheArray, MissThenHit)
{
    CacheArray c(4 * 1024, 4, 64);
    auto r1 = c.access(0x1000);
    EXPECT_FALSE(r1.hit);
    r1.line->state = LineState::Exclusive;
    auto r2 = c.access(0x1000);
    EXPECT_TRUE(r2.hit);
    // Same line, different byte offset.
    auto r3 = c.access(0x103F);
    EXPECT_TRUE(r3.hit);
    // Next line misses.
    auto r4 = c.access(0x1040);
    EXPECT_FALSE(r4.hit);
}

TEST(CacheArray, LruEvictsOldest)
{
    // 2-way, 1 set: third distinct line evicts the least recently used.
    CacheArray c(128, 2, 64);
    c.access(0x0000).line->state = LineState::Exclusive;
    c.access(0x1000).line->state = LineState::Exclusive;
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_TRUE(c.access(0x0000).hit);
    auto r = c.access(0x2000);
    EXPECT_FALSE(r.hit);
    ASSERT_TRUE(r.evicted);
    EXPECT_EQ(r.victim_addr, 0x1000u);
    r.line->state = LineState::Exclusive;
    EXPECT_TRUE(c.access(0x0000).hit);
    EXPECT_TRUE(c.access(0x2000).hit);
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(CacheArray, VictimSnapshotPreserved)
{
    CacheArray c(64, 1, 64);
    auto r1 = c.access(0x0000);
    r1.line->state = LineState::Modified;
    r1.line->sharers = 0x5;
    r1.line->dirty = true;
    auto r2 = c.access(0x4000);
    ASSERT_TRUE(r2.evicted);
    EXPECT_EQ(r2.victim.state, LineState::Modified);
    EXPECT_EQ(r2.victim.sharers, 0x5);
    EXPECT_TRUE(r2.victim.dirty);
    // The new line starts clean.
    EXPECT_EQ(r2.line->state, LineState::Invalid);
    EXPECT_EQ(r2.line->sharers, 0);
}

TEST(CacheArray, InvalidateRemovesLine)
{
    CacheArray c(4 * 1024, 4, 64);
    c.access(0x40).line->state = LineState::Shared;
    EXPECT_TRUE(c.probe(0x40));
    c.invalidate(0x40);
    EXPECT_FALSE(c.probe(0x40));
    // Invalidating a missing line is a no-op.
    c.invalidate(0x9999940);
}

TEST(CacheArray, ProbeDoesNotAllocate)
{
    CacheArray c(4 * 1024, 4, 64);
    EXPECT_EQ(c.probe(0x80), nullptr);
    EXPECT_EQ(c.probe(0x80), nullptr);
}

TEST(CacheArray, InvalidWaysPreferredOverEviction)
{
    CacheArray c(256, 4, 64); // 1 set, 4 ways
    c.access(0x0000).line->state = LineState::Exclusive;
    c.access(0x1000).line->state = LineState::Exclusive;
    auto r = c.access(0x2000); // two ways still free
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.evicted);
}

TEST(CacheArray, FlushClearsAll)
{
    CacheArray c(1024, 2, 64);
    for (std::uint64_t a = 0; a < 8; ++a)
        c.access(a * 64).line->state = LineState::Shared;
    c.flush();
    for (std::uint64_t a = 0; a < 8; ++a)
        EXPECT_EQ(c.probe(a * 64), nullptr);
}

TEST(CacheArray, LineAddrMasksOffset)
{
    CacheArray c(1024, 2, 64);
    EXPECT_EQ(c.lineAddr(0x1234), 0x1200u);
    EXPECT_EQ(c.lineAddr(0x1240), 0x1240u);
}

TEST(CacheArray, SetIndexSeparatesLines)
{
    // 64 sets: addresses 64 B apart land in consecutive sets and never
    // evict each other until the capacity wraps.
    CacheArray c(32 * 1024, 8, 64); // 64 sets x 8 ways
    for (std::uint64_t i = 0; i < 64; ++i) {
        auto r = c.access(i * 64);
        EXPECT_FALSE(r.hit);
        EXPECT_FALSE(r.evicted);
        r.line->state = LineState::Exclusive;
    }
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_TRUE(c.access(i * 64).hit);
}

} // namespace
} // namespace omega
