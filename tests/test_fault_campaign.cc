/**
 * @file
 * Fault-campaign correctness oracle (the CI gate).
 *
 * Two guarantees, checked over {BFS, SSSP, CC} x {baseline, omega} —
 * integer algorithms, so "matches" means bit-identical, no ULP budget:
 *
 *  1. Transient-fault recovery is lossless: a seeded campaign with
 *     retries enabled computes EXACTLY the vertex properties of the
 *     fault-free machine run (and of the functional reference). Faults
 *     may only move cycles around.
 *  2. Forced persistent degradation is correct: with every offload
 *     NACKing and one-strike poison/demotion thresholds, the machine
 *     finishes the run on the cache path and still matches the
 *     functional reference through the differential harness.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "omega/omega_machine.hh"
#include "sim/baseline_machine.hh"
#include "sim/checkpoint.hh"
#include "sim/fault.hh"
#include "sim/params.hh"
#include "sim/snapshot.hh"
#include "testing/capture.hh"
#include "testing/differential.hh"
#include "testing/fuzz.hh"
#include "util/json.hh"
#include "util/stats.hh"

namespace omega {
namespace {

using testing::AlgoCapture;
using testing::captureAlgorithm;
using testing::compareCaptures;
using testing::DiffOptions;
using testing::FuzzFamily;
using testing::FuzzSpec;
using testing::MachineVariant;
using testing::runDifferentialCase;

constexpr double kScale = 1.0 / 64.0;

const std::vector<AlgorithmKind> kIntegerAlgos = {
    AlgorithmKind::BFS, AlgorithmKind::SSSP, AlgorithmKind::CC};

FuzzSpec
campaignGraph()
{
    FuzzSpec spec;
    spec.family = FuzzFamily::Rmat;
    spec.seed = 29;
    spec.vertices = 256;
    spec.edge_factor = 8;
    spec.symmetrize = true;
    return spec;
}

FaultPlan
transientPlan()
{
    std::string error;
    const auto p = FaultPlan::parse(
        "seed=23,ecc=0.03,nack=0.08,drop=0.02,delay=0.02,dram=0.05",
        &error);
    EXPECT_TRUE(p.has_value()) << error;
    return p.value_or(FaultPlan{});
}

enum class Machine { Baseline, Omega };

std::unique_ptr<MemorySystem>
makeMachine(Machine which)
{
    if (which == Machine::Baseline) {
        return std::make_unique<BaselineMachine>(
            MachineParams::baseline().scaledCapacities(kScale));
    }
    return std::make_unique<OmegaMachine>(
        MachineParams::omega().scaledCapacities(kScale));
}

TEST(FaultCampaign, TransientRecoveryIsBitIdentical)
{
    const Graph g = campaignGraph().materialize();
    const FaultPlan plan = transientPlan();
    for (Machine which : {Machine::Baseline, Machine::Omega}) {
        for (AlgorithmKind algo : kIntegerAlgos) {
            auto clean = makeMachine(which);
            const AlgoCapture expected =
                captureAlgorithm(algo, g, clean.get());

            auto faulty = makeMachine(which);
            faulty->armFaults(plan);
            const AlgoCapture got = captureAlgorithm(algo, g, faulty.get());

            // max_ulps 0: every property must match bit for bit.
            const auto failures =
                compareCaptures(expected, got, /*max_ulps=*/0);
            EXPECT_TRUE(failures.empty())
                << clean->name() << " / " << algorithmName(algo) << ": "
                << (failures.empty() ? "" : failures.front());

            // The functional reference agrees too.
            const AlgoCapture func = captureAlgorithm(algo, g, nullptr);
            EXPECT_TRUE(compareCaptures(func, got, /*max_ulps=*/0).empty())
                << clean->name() << " / " << algorithmName(algo)
                << " diverged from the functional reference";
        }
    }
}

TEST(FaultCampaign, CampaignActuallyInjects)
{
    // Guard against a vacuous oracle: the transient campaign must fire
    // real events on the omega machine.
    const Graph g = campaignGraph().materialize();
    auto mach = makeMachine(Machine::Omega);
    mach->armFaults(transientPlan());
    (void)captureAlgorithm(AlgorithmKind::BFS, g, mach.get());
    ASSERT_NE(mach->faultInjector(), nullptr);
    EXPECT_GT(mach->faultInjector()->totalEvents(), 0u);
}

TEST(FaultCampaign, ForcedDegradationMatchesFunctionalReference)
{
    // Retry exhaustion on every offload + one-strike thresholds: lines
    // poison, scratchpads demote, atomics run on the core — and the
    // differential harness must still pass against the functional run.
    std::string error;
    const auto plan = FaultPlan::parse(
        "seed=23,nack-always=1,retries=2,backoff=4,"
        "line-threshold=1,sp-threshold=1",
        &error);
    ASSERT_TRUE(plan.has_value()) << error;

    DiffOptions opts;
    opts.check_timing = false;
    opts.variants = {MachineVariant::Omega};
    opts.fault_plan = plan;
    for (AlgorithmKind algo : kIntegerAlgos) {
        const auto result =
            runDifferentialCase(campaignGraph(), algo, opts);
        ASSERT_FALSE(result.skipped);
        EXPECT_TRUE(result.passed()) << result.summary();
    }
}

/** Digest of an armed run: cycles + full stat tree + the injector's
 *  event totals and running trace digest (the event log state). */
std::uint64_t
armedDigest(const MemorySystem &m)
{
    std::ostringstream os;
    os << m.name() << '|' << m.cycles() << '|';
    const StatGroup *tree = m.statTree();
    EXPECT_NE(tree, nullptr);
    if (tree != nullptr) {
        JsonWriter w(os, /*pretty=*/false);
        tree->writeJson(w);
        EXPECT_TRUE(w.complete());
    }
    EXPECT_NE(m.faultInjector(), nullptr);
    if (m.faultInjector() != nullptr) {
        os << '|' << m.faultInjector()->totalEvents() << '|'
           << m.faultInjector()->traceDigest();
    }
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : os.str()) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

TEST(FaultCampaign, ArmedResumeReproducesUninterruptedDigest)
{
    // A checkpoint taken mid-campaign carries the injector's xorshift
    // stream, escalation counters and running trace digest; the resumed
    // run must fire the exact remaining fault sequence. Checked over
    // both machine families and sim_threads {1, 8}.
    const Graph g = campaignGraph().materialize();
    const FaultPlan plan = transientPlan();
    const std::string path =
        ::testing::TempDir() + "armed_resume.snap";
    for (Machine which : {Machine::Baseline, Machine::Omega}) {
        auto ref = makeMachine(which);
        ref->armFaults(plan);
        EngineOptions ref_opts;
        (void)runAlgorithmOnMachine(AlgorithmKind::BFS, g, ref.get(),
                                    ref_opts);
        const std::uint64_t uninterrupted = armedDigest(*ref);

        for (const unsigned threads : {1u, 8u}) {
            const std::string key = "armed/" + ref->name();
            CheckpointCoordinator coord;
            coord.configureSave(path, /*every=*/0);
            coord.test_stop = [](std::uint64_t it) { return it == 2; };
            coord.beginRun(key);
            {
                auto m = makeMachine(which);
                m->armFaults(plan);
                EngineOptions opts;
                opts.sim_threads = threads;
                opts.checkpoint = &coord;
                EXPECT_THROW(runAlgorithmOnMachine(AlgorithmKind::BFS, g,
                                                   m.get(), opts),
                             CheckpointInterrupt);
            }
            CheckpointCoordinator resume;
            resume.setResumePayload(readSnapshotFile(path));
            resume.beginRun(key);
            auto m = makeMachine(which);
            m->armFaults(plan);
            EngineOptions opts;
            opts.sim_threads = threads;
            opts.checkpoint = &resume;
            (void)runAlgorithmOnMachine(AlgorithmKind::BFS, g, m.get(),
                                        opts);
            EXPECT_FALSE(resume.resumePending());
            EXPECT_EQ(armedDigest(*m), uninterrupted)
                << m->name() << " armed resume diverged at sim_threads="
                << threads;
        }
    }
    std::remove(path.c_str());
}

TEST(FaultCampaign, DegradedRunLandsOnCachePath)
{
    std::string error;
    const auto plan = FaultPlan::parse(
        "seed=23,nack-always=1,retries=1,backoff=4,"
        "line-threshold=1,sp-threshold=1",
        &error);
    ASSERT_TRUE(plan.has_value()) << error;
    const Graph g = campaignGraph().materialize();
    OmegaMachine mach(MachineParams::omega().scaledCapacities(kScale));
    mach.armFaults(*plan);
    (void)captureAlgorithm(AlgorithmKind::CC, g, &mach);
    const FaultCounters &c = mach.faultInjector()->counters();
    EXPECT_GT(c.degraded_atomics, 0u);
    EXPECT_GT(c.lines_poisoned, 0u);
    EXPECT_GT(mach.controller().demotedScratchpads(), 0u);
}

} // namespace
} // namespace omega
