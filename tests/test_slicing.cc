/**
 * @file
 * Tests for graph slicing (paper section VII) and sliced PageRank.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/pagerank.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"
#include "graph/reorder.hh"
#include "graph/slicing.hh"
#include "omega/omega_machine.hh"
#include "util/rng.hh"

namespace omega {
namespace {

Graph
testGraph(std::uint64_t seed = 3)
{
    Rng rng(seed);
    Graph g = buildGraph(1 << 10, generateRmat(10, 8, rng));
    return reorderGraph(g, ReorderKind::InDegreeSort);
}

TEST(Slicing, PlanCoversAllVerticesWithoutOverlap)
{
    Graph g = testGraph();
    const SlicingPlan plan =
        planSlices(g, /*sp=*/9 * 100, /*line=*/9,
                   SlicingPolicy::FitAllVtxProp);
    ASSERT_FALSE(plan.ranges.empty());
    VertexId expect = 0;
    for (const auto &[begin, end] : plan.ranges) {
        EXPECT_EQ(begin, expect);
        EXPECT_GT(end, begin);
        expect = end;
    }
    EXPECT_EQ(expect, g.numVertices());
}

TEST(Slicing, HotPolicyNeedsFewerSlices)
{
    Graph g = testGraph();
    const auto all = planSlices(g, 9 * 50, 9, SlicingPolicy::FitAllVtxProp);
    const auto hot = planSlices(g, 9 * 50, 9, SlicingPolicy::FitHotVtxProp,
                                0.20);
    // Paper section VII: up to 1/hot_fraction = 5x fewer slices.
    EXPECT_GT(all.numSlices(), hot.numSlices());
    EXPECT_NEAR(static_cast<double>(all.numSlices()) /
                    static_cast<double>(hot.numSlices()),
                5.0, 1.0);
}

TEST(Slicing, GiantScratchpadMeansOneSlice)
{
    Graph g = testGraph();
    const auto plan = planSlices(g, 1ull << 30, 9,
                                 SlicingPolicy::FitAllVtxProp);
    EXPECT_EQ(plan.numSlices(), 1u);
}

TEST(Slicing, SlicePartitionsArcsByDestination)
{
    Graph g = testGraph();
    const auto plan = planSlices(g, 9 * 200, 9,
                                 SlicingPolicy::FitAllVtxProp);
    const auto slices = sliceGraph(g, plan);
    ASSERT_EQ(slices.size(), plan.numSlices());
    EdgeId total_arcs = 0;
    for (std::size_t s = 0; s < slices.size(); ++s) {
        const auto &[begin, end] = plan.ranges[s];
        total_arcs += slices[s].numArcs();
        // Every arc's destination is inside the slice window.
        for (VertexId u = 0; u < slices[s].numVertices(); ++u) {
            for (VertexId d : slices[s].outNeighbors(u)) {
                ASSERT_GE(d, begin);
                ASSERT_LT(d, end);
            }
        }
    }
    EXPECT_EQ(total_arcs, g.numArcs());
}

TEST(Slicing, SliceKeepsVertexIdSpace)
{
    Graph g = testGraph();
    Graph s = sliceByDestination(g, 100, 200);
    EXPECT_EQ(s.numVertices(), g.numVertices());
}

TEST(Slicing, SlicedPageRankMatchesUnsliced)
{
    Graph g = testGraph();
    const auto plan = planSlices(g, 9 * 128, 9,
                                 SlicingPolicy::FitHotVtxProp);
    ASSERT_GT(plan.numSlices(), 1u);
    const auto plain = runPageRank(g, nullptr, 4);
    const auto sliced = runPageRankSliced(g, nullptr, plan, 4);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_NEAR(plain.rank[v], sliced.rank[v], 1e-12) << v;
}

TEST(Slicing, SlicedRunWorksOnOmegaMachine)
{
    Graph g = testGraph();
    MachineParams p = MachineParams::omega().scaledCapacities(1.0 / 256);
    const std::uint32_t line = 9;
    const auto plan =
        planSlices(g, p.sp_total_bytes, line, SlicingPolicy::FitHotVtxProp);
    OmegaMachine m(p);
    const auto sliced = runPageRankSliced(g, &m, plan, 2);
    const auto plain = runPageRank(g, nullptr, 2);
    EXPECT_GT(m.cycles(), 0u);
    EXPECT_GT(m.report().atomics_offloaded, 0u);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_NEAR(plain.rank[v], sliced.rank[v], 1e-9) << v;
}

} // namespace
} // namespace omega
