/**
 * @file
 * End-to-end integration tests: mini versions of the paper's headline
 * experiments, checking the qualitative shapes the benches rely on.
 */

#include <gtest/gtest.h>

#include "algorithms/algorithms.hh"
#include "graph/datasets.hh"
#include "graph/reorder.hh"
#include "model/energy_model.hh"
#include "model/highlevel_model.hh"
#include "omega/omega_machine.hh"
#include "sim/baseline_machine.hh"

namespace omega {
namespace {

struct MiniRun
{
    Cycles base_cycles;
    Cycles omega_cycles;
    StatsReport base;
    StatsReport omega;
    MachineParams base_params;
    MachineParams omega_params;
};

MiniRun
runPair(const std::string &dataset, AlgorithmKind kind)
{
    const auto spec = *findDataset(dataset);
    Graph g = reorderGraph(buildDataset(spec),
                           ReorderKind::InDegreeNthElement);
    MiniRun out;
    out.base_params =
        MachineParams::baseline().scaledCapacities(spec.capacity_scale);
    out.omega_params =
        MachineParams::omega().scaledCapacities(spec.capacity_scale);
    BaselineMachine base(out.base_params);
    OmegaMachine om(out.omega_params);
    out.base_cycles = runAlgorithmOnMachine(kind, g, &base);
    out.omega_cycles = runAlgorithmOnMachine(kind, g, &om);
    out.base = base.report();
    out.omega = om.report();
    return out;
}

TEST(Integration, Fig14ShapePageRankOnSd)
{
    const MiniRun r = runPair("sd", AlgorithmKind::PageRank);
    const double speedup = static_cast<double>(r.base_cycles) /
                           static_cast<double>(r.omega_cycles);
    EXPECT_GT(speedup, 1.2);
    EXPECT_LT(speedup, 8.0);
}

TEST(Integration, Fig14ShapeBfsOnSd)
{
    const MiniRun r = runPair("sd", AlgorithmKind::BFS);
    const double speedup = static_cast<double>(r.base_cycles) /
                           static_cast<double>(r.omega_cycles);
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 6.0);
}

TEST(Integration, Fig15ShapeLastLevelHitRateImproves)
{
    const MiniRun r = runPair("sd", AlgorithmKind::PageRank);
    EXPECT_GT(r.omega.lastLevelHitRate(), r.base.lastLevelHitRate());
}

TEST(Integration, Fig16ShapeDramBandwidthImproves)
{
    const MiniRun r = runPair("sd", AlgorithmKind::PageRank);
    EXPECT_GT(r.omega.dramBandwidthGBs(2.0), r.base.dramBandwidthGBs(2.0));
}

TEST(Integration, Fig17ShapeOnChipTrafficDrops)
{
    const MiniRun r = runPair("sd", AlgorithmKind::PageRank);
    EXPECT_LT(static_cast<double>(r.omega.onchip_bytes),
              0.6 * static_cast<double>(r.base.onchip_bytes));
}

TEST(Integration, Fig18ShapeRoadGraphGainsLess)
{
    const MiniRun pl = runPair("sd", AlgorithmKind::PageRank);
    const MiniRun road = runPair("rPA", AlgorithmKind::PageRank);
    const double s_pl = static_cast<double>(pl.base_cycles) /
                        static_cast<double>(pl.omega_cycles);
    const double s_road = static_cast<double>(road.base_cycles) /
                          static_cast<double>(road.omega_cycles);
    // Power-law graphs benefit more... unless the road graph's tiny
    // vtxProp fits entirely (the paper notes rPA/rCA gain well then).
    // The robust Fig-18 claim uses a road graph too large to fit: USA.
    EXPECT_GT(s_pl, 1.0);
    EXPECT_GT(s_road, 0.8);
}

TEST(Integration, Fig21ShapeOmegaSavesMemoryEnergy)
{
    const MiniRun r = runPair("sd", AlgorithmKind::PageRank);
    const auto eb = computeMemoryEnergy(r.base, r.base_params);
    const auto eo = computeMemoryEnergy(r.omega, r.omega_params);
    EXPECT_LT(eo.total(), eb.total());
}

TEST(Integration, DeterministicAcrossRuns)
{
    const MiniRun a = runPair("sd", AlgorithmKind::PageRank);
    const MiniRun b = runPair("sd", AlgorithmKind::PageRank);
    EXPECT_EQ(a.base_cycles, b.base_cycles);
    EXPECT_EQ(a.omega_cycles, b.omega_cycles);
    EXPECT_EQ(a.omega.onchip_bytes, b.omega.onchip_bytes);
}

TEST(Integration, HighLevelModelTracksDetailedSim)
{
    // Fig 20 validation: feed the high-level model the measured inputs
    // and compare its speedup against the detailed simulation.
    const auto spec = *findDataset("sd");
    Graph g = reorderGraph(buildDataset(spec),
                           ReorderKind::InDegreeNthElement);
    const MiniRun r = runPair("sd", AlgorithmKind::PageRank);

    HighLevelInputs in;
    in.vertices = g.numVertices();
    in.edges = g.numArcs();
    in.vtxprop_accesses_per_edge = 1.0;
    in.atomics_per_edge = 1.0;
    in.llc_hit_rate = r.base.l2HitRate();
    in.sp_access_coverage = r.omega.hotVertexAccessFraction() > 0
                                ? static_cast<double>(
                                      r.omega.sp_accesses) /
                                      std::max<std::uint64_t>(
                                          r.omega.vtxprop_accesses, 1)
                                : 0.8;
    in.sp_access_coverage = std::min(in.sp_access_coverage, 1.0);
    const auto est = estimateLargeGraph(r.base_params, r.omega_params, in);
    const double detailed = static_cast<double>(r.base_cycles) /
                            static_cast<double>(r.omega_cycles);
    // The paper reports ~7% model error; we accept a generous band while
    // still requiring the model to point the same direction and order.
    EXPECT_GT(est.speedup, 1.0);
    EXPECT_NEAR(est.speedup, detailed, detailed * 0.6);
}

TEST(Integration, ReorderingAblationDirection)
{
    // Section III: in-degree reordering alone (on the BASELINE, no
    // OMEGA hardware) helps only mildly.
    const auto spec = *findDataset("sd");
    Graph natural = buildDataset(spec);
    Graph ordered =
        reorderGraph(natural, ReorderKind::InDegreeNthElement);

    const auto params =
        MachineParams::baseline().scaledCapacities(spec.capacity_scale);
    BaselineMachine m1(params);
    const Cycles c_nat =
        runAlgorithmOnMachine(AlgorithmKind::PageRank, natural, &m1);
    BaselineMachine m2(params);
    const Cycles c_ord =
        runAlgorithmOnMachine(AlgorithmKind::PageRank, ordered, &m2);
    // Within +-35%: reordering alone is NOT the 2x win OMEGA gets.
    const double ratio =
        static_cast<double>(c_nat) / static_cast<double>(c_ord);
    EXPECT_GT(ratio, 0.65);
    EXPECT_LT(ratio, 1.35);
}

} // namespace
} // namespace omega
