/**
 * @file
 * Tests for the parameterized DRAM channel design space.
 *
 * The bench_channels sweep varies dram_channels across 1-16; these tests
 * pin the model properties the sweep's numbers rest on:
 *  - the address-to-channel mapping is a partition of the line address
 *    space (every line lands on exactly one valid channel, and the
 *    line-interleaved formula is honored for pow2 and non-pow2 counts);
 *  - per-channel busy/request accounting is conservative: it sums to the
 *    single-channel totals of the same request stream, and collapses to
 *    exactly those totals at 1 channel;
 *  - adding channels never slows the same workload down, open loop
 *    (fuzzed arrival stream through the raw Dram model) and closed loop
 *    (a full machine run, the bench_channels configuration).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_common.hh"
#include "sim/dram.hh"
#include "sim/params.hh"
#include "util/rng.hh"

namespace omega {
namespace {

MachineParams
paramsWithChannels(unsigned channels)
{
    MachineParams p = MachineParams::baseline();
    p.dram_channels = channels;
    return p;
}

/** Fuzzed open-loop request stream: non-decreasing issue times. */
struct Request
{
    Cycles now = 0;
    std::uint64_t addr = 0;
    bool is_write = false;
};

std::vector<Request>
fuzzedStream(std::uint64_t seed, int n)
{
    Rng rng(seed);
    std::vector<Request> reqs;
    Cycles now = 0;
    for (int i = 0; i < n; ++i) {
        now += rng.nextBounded(8);
        Request r;
        r.now = now;
        // Spread over many lines with some locality-free churn.
        r.addr = rng.nextBounded(1 << 20);
        r.is_write = rng.nextBool(0.25);
        reqs.push_back(r);
    }
    return reqs;
}

/** Replay @p reqs; returns the last data-return time (makespan). */
Cycles
replay(Dram &dram, const std::vector<Request> &reqs)
{
    Cycles makespan = 0;
    for (const Request &r : reqs) {
        if (r.is_write) {
            dram.write(r.now, r.addr, 64);
        } else {
            const Cycles lat = dram.read(r.now, r.addr, 64);
            makespan = std::max(makespan, r.now + lat);
        }
    }
    return makespan;
}

// ---------------------------------------------------------------------
// Partition property of the address-to-channel mapping.
// ---------------------------------------------------------------------

TEST(DramChannels, ChannelMappingIsAPartition)
{
    for (unsigned channels : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 16u}) {
        Dram dram(paramsWithChannels(channels));
        ASSERT_EQ(dram.numChannels(), channels);
        std::vector<std::uint64_t> lines_per_channel(channels, 0);
        Rng rng(0xBEEF ^ channels);
        for (int i = 0; i < 4096; ++i) {
            const std::uint64_t addr = rng.nextBounded(std::uint64_t(1)
                                                       << 32);
            const unsigned ch = dram.channelOf(addr);
            // In range, line-interleaved, and offset-independent: every
            // byte of a line maps where its line maps.
            ASSERT_LT(ch, channels);
            ASSERT_EQ(ch, (addr / 64) % channels);
            ASSERT_EQ(ch, dram.channelOf(addr & ~std::uint64_t{63}));
            ++lines_per_channel[ch];
        }
        // Round-robin interleave: no channel starves.
        for (unsigned ch = 0; ch < channels; ++ch)
            EXPECT_GT(lines_per_channel[ch], 0u) << channels << " channels";
    }
}

// ---------------------------------------------------------------------
// Per-channel accounting identities.
// ---------------------------------------------------------------------

TEST(DramChannels, BusyAccountingSumsToSingleChannelTotals)
{
    const auto reqs = fuzzedStream(0x5EED, 20000);

    // The reference: everything serialized on one channel.
    Dram one(paramsWithChannels(1));
    replay(one, reqs);
    ASSERT_EQ(one.channelBusyCycles().size(), 1u);
    ASSERT_EQ(one.channelRequests().size(), 1u);
    const Cycles total_busy = one.channelBusyCycles()[0];
    const std::uint64_t total_reqs = one.channelRequests()[0];
    EXPECT_EQ(total_reqs, one.reads() + one.writes());
    EXPECT_GT(total_busy, 0u);

    // Occupancy per transfer is a per-channel property (fixed GB/s per
    // channel), so distributing the same stream over any channel count
    // conserves both sums exactly.
    for (unsigned channels : {2u, 3u, 4u, 8u, 16u}) {
        Dram dram(paramsWithChannels(channels));
        replay(dram, reqs);
        Cycles busy_sum = 0;
        for (Cycles b : dram.channelBusyCycles())
            busy_sum += b;
        std::uint64_t req_sum = 0;
        for (std::uint64_t r : dram.channelRequests())
            req_sum += r;
        EXPECT_EQ(busy_sum, total_busy) << channels << " channels";
        EXPECT_EQ(req_sum, total_reqs) << channels << " channels";
        EXPECT_EQ(req_sum, dram.reads() + dram.writes());
    }
}

TEST(DramChannels, ResetClearsPerChannelAccounting)
{
    Dram dram(paramsWithChannels(4));
    replay(dram, fuzzedStream(0xAB, 1000));
    dram.reset();
    for (Cycles b : dram.channelBusyCycles())
        EXPECT_EQ(b, 0u);
    for (std::uint64_t r : dram.channelRequests())
        EXPECT_EQ(r, 0u);
}

// ---------------------------------------------------------------------
// More channels never hurt.
// ---------------------------------------------------------------------

TEST(DramChannels, OpenLoopMakespanMonotoneNonIncreasing)
{
    // Doubling the channel count refines the partition (addr mod 2C
    // splits each addr mod C class), so each channel serves a
    // subsequence of the coarser stream and no request can start later.
    const auto reqs = fuzzedStream(0xF00D, 20000);
    Cycles prev_makespan = ~Cycles{0};
    Cycles prev_queue = ~Cycles{0};
    for (unsigned channels : {1u, 2u, 4u, 8u, 16u}) {
        Dram dram(paramsWithChannels(channels));
        const Cycles makespan = replay(dram, reqs);
        EXPECT_LE(makespan, prev_makespan) << channels << " channels";
        EXPECT_LE(dram.queueCycles(), prev_queue)
            << channels << " channels";
        prev_makespan = makespan;
        prev_queue = dram.queueCycles();
    }
}

TEST(DramChannels, SweepCyclesMonotoneNonIncreasingOnMachine)
{
    // Closed loop: the bench_channels configuration itself (PageRank on
    // the smallest power-law dataset, baseline machine). Latency relief
    // feeds back into issue times here, so this is the property the
    // sweep table's speedup column relies on.
    const DatasetSpec spec = *findDataset("sd");
    std::uint64_t prev_cycles = ~std::uint64_t{0};
    for (unsigned channels : {1u, 2u, 4u, 8u, 16u}) {
        const auto out = bench::runOn(
            spec, AlgorithmKind::PageRank, bench::MachineKind::Baseline,
            [channels](MachineParams &p) { p.dram_channels = channels; });
        EXPECT_LE(out.cycles, prev_cycles) << channels << " channels";
        prev_cycles = out.cycles;
    }
}

} // namespace
} // namespace omega
