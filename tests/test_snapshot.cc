/**
 * @file
 * Snapshot format and checkpoint/restore correctness.
 *
 * Three layers are covered here:
 *
 *  1. The byte format: SnapshotWriter/SnapshotReader primitive
 *     round-trips and bounds checking, file framing (magic, version,
 *     size, FNV-64 checksum), atomic write, and the journal's
 *     torn-tail tolerance.
 *  2. The error taxonomy: a truncated file, a flipped payload bit, a
 *     bumped version and a non-snapshot file must each be rejected
 *     with their own distinct exception type — a snapshot is restored
 *     exactly or refused loudly, never silently mis-restored.
 *  3. The resume contract: for every registered machine, interrupting
 *     a run at an arbitrary iteration boundary (via the coordinator's
 *     test hook), then restoring the flushed checkpoint into a fresh
 *     machine and re-entering the loop, must reproduce the
 *     uninterrupted run's digest — cycles, the complete stat tree and
 *     the deterministic replay counters — bit for bit.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/algorithms.hh"
#include "algorithms/bfs.hh"
#include "algorithms/components.hh"
#include "algorithms/pagerank.hh"
#include "sim/checkpoint.hh"
#include "sim/fault.hh"
#include "sim/machine_registry.hh"
#include "sim/snapshot.hh"
#include "testing/fuzz.hh"
#include "util/json.hh"
#include "util/stats.hh"

namespace omega {
namespace {

using testing::FuzzFamily;
using testing::FuzzSpec;

// ---------------------------------------------------------------------
// Layer 1: writer/reader and file framing.
// ---------------------------------------------------------------------

TEST(SnapshotFormat, PrimitiveRoundTrip)
{
    SnapshotWriter w;
    w.putU8(0xab);
    w.putBool(true);
    w.putBool(false);
    w.putU32(0xdeadbeefu);
    w.putU64(0x0123456789abcdefull);
    w.putF64(-1234.5678);
    w.putString("hello snapshot");
    w.putString("");
    const std::vector<std::uint64_t> v64 = {1, 2, 3, 0xffffffffffffffffull};
    w.putU64Vector(v64);
    const std::vector<std::uint32_t> v32 = {7, 0, 9};
    w.putU32Vector(v32);
    const std::vector<std::uint8_t> v8 = {0x10, 0x20};
    w.putU8Vector(v8);
    const double raw[3] = {1.0, 2.5, -3.75};
    w.putBytes(raw, sizeof raw);

    SnapshotReader r(w.bytes());
    EXPECT_EQ(r.getU8(), 0xab);
    EXPECT_TRUE(r.getBool());
    EXPECT_FALSE(r.getBool());
    EXPECT_EQ(r.getU32(), 0xdeadbeefu);
    EXPECT_EQ(r.getU64(), 0x0123456789abcdefull);
    EXPECT_DOUBLE_EQ(r.getF64(), -1234.5678);
    EXPECT_EQ(r.getString(), "hello snapshot");
    EXPECT_EQ(r.getString(), "");
    EXPECT_EQ(r.getU64Vector(), v64);
    EXPECT_EQ(r.getU32Vector(), v32);
    EXPECT_EQ(r.getByteVector(), v8);
    double back[3] = {};
    r.getBytesInto(back, sizeof back);
    EXPECT_EQ(back[0], 1.0);
    EXPECT_EQ(back[1], 2.5);
    EXPECT_EQ(back[2], -3.75);
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(SnapshotFormat, ReaderBoundsChecked)
{
    SnapshotWriter w;
    w.putU32(42);
    SnapshotReader r(w.bytes());
    EXPECT_EQ(r.getU32(), 42u);
    EXPECT_THROW(r.getU64(), SnapshotTruncatedError);
}

TEST(SnapshotFormat, FixedSizeFieldRejectsWrongSize)
{
    SnapshotWriter w;
    const std::uint32_t raw[2] = {1, 2};
    w.putBytes(raw, sizeof raw);
    SnapshotReader r(w.bytes());
    std::uint32_t back[4] = {};
    EXPECT_THROW(r.getBytesInto(back, sizeof back), SnapshotStateError);
}

TEST(SnapshotFormat, BlobFramingPatchesSize)
{
    SnapshotWriter w;
    const std::size_t blob = w.beginBlob();
    w.putU64(7);
    w.putString("xyz");
    w.endBlob(blob);

    SnapshotReader r(w.bytes());
    const std::uint64_t size = r.getU64();
    const std::size_t start = r.position();
    EXPECT_EQ(r.getU64(), 7u);
    EXPECT_EQ(r.getString(), "xyz");
    EXPECT_EQ(r.position() - start, size);
    EXPECT_EQ(r.remaining(), 0u);
}

/** A small framed file on disk for the taxonomy tests. */
std::string
writeSampleFile(const std::string &name)
{
    SnapshotWriter w;
    w.putString("sample-run-key");
    for (std::uint64_t i = 0; i < 64; ++i)
        w.putU64(i * 2654435761ull);
    const std::string path = ::testing::TempDir() + name;
    writeSnapshotFile(path, w.bytes());
    return path;
}

std::vector<char>
slurpBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::vector<char>((std::istreambuf_iterator<char>(is)),
                             std::istreambuf_iterator<char>());
}

void
spewBytes(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SnapshotFile, RoundTripAndAtomicWrite)
{
    const std::string path = writeSampleFile("roundtrip.snap");
    SnapshotWriter w;
    w.putString("sample-run-key");
    for (std::uint64_t i = 0; i < 64; ++i)
        w.putU64(i * 2654435761ull);
    EXPECT_EQ(readSnapshotFile(path), w.bytes());
    // The atomic-write protocol renames the tmp file over the target;
    // no tmp litter may survive a successful write.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST(SnapshotFile, MissingFileIsSnapshotError)
{
    EXPECT_THROW(
        readSnapshotFile(::testing::TempDir() + "no-such-file.snap"),
        SnapshotError);
}

TEST(SnapshotFile, BadMagicIsFormatError)
{
    const std::string path = writeSampleFile("badmagic.snap");
    auto bytes = slurpBytes(path);
    bytes[0] ^= 0x5a; // magic occupies bytes [0, 8)
    spewBytes(path, bytes);
    EXPECT_THROW(readSnapshotFile(path), SnapshotFormatError);
    std::remove(path.c_str());
}

TEST(SnapshotFile, VersionBumpIsVersionError)
{
    const std::string path = writeSampleFile("badversion.snap");
    auto bytes = slurpBytes(path);
    bytes[8] = static_cast<char>(kSnapshotVersion + 1); // version u32 at 8
    spewBytes(path, bytes);
    EXPECT_THROW(readSnapshotFile(path), SnapshotVersionError);
    std::remove(path.c_str());
}

TEST(SnapshotFile, TruncationIsTruncatedError)
{
    const std::string path = writeSampleFile("truncated.snap");
    auto bytes = slurpBytes(path);
    bytes.resize(bytes.size() - 17);
    spewBytes(path, bytes);
    EXPECT_THROW(readSnapshotFile(path), SnapshotTruncatedError);
    // A file shorter than the header itself is also truncation.
    bytes.resize(11);
    spewBytes(path, bytes);
    EXPECT_THROW(readSnapshotFile(path), SnapshotTruncatedError);
    std::remove(path.c_str());
}

TEST(SnapshotFile, BitFlipIsChecksumError)
{
    const std::string path = writeSampleFile("bitflip.snap");
    auto bytes = slurpBytes(path);
    bytes[bytes.size() / 2] ^= 0x01; // somewhere inside the payload
    spewBytes(path, bytes);
    EXPECT_THROW(readSnapshotFile(path), SnapshotChecksumError);
    std::remove(path.c_str());
}

TEST(SnapshotJournal, AppendReadAndTornTail)
{
    const std::string path = ::testing::TempDir() + "journal.j";
    std::remove(path.c_str());
    EXPECT_TRUE(readJournalRecords(path).empty()); // missing file

    std::vector<std::vector<std::uint8_t>> written;
    for (int i = 0; i < 3; ++i) {
        SnapshotWriter w;
        w.putString("record-" + std::to_string(i));
        w.putU64(static_cast<std::uint64_t>(i) * 1000);
        appendJournalRecord(path, w.bytes());
        written.push_back(w.bytes());
    }
    EXPECT_EQ(readJournalRecords(path), written);

    // A crash mid-append leaves a torn record at the tail; the intact
    // prefix must still load (those runs are kept, the torn one is
    // simply re-executed).
    {
        std::ofstream os(path, std::ios::binary | std::ios::app);
        const char garbage[13] = "OMGSNAP\0torn";
        os.write(garbage, sizeof garbage);
    }
    EXPECT_EQ(readJournalRecords(path), written);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Layer 3: interrupt-at-arbitrary-iteration + resume reproduces the
// uninterrupted digest, for every machine in the registry.
// ---------------------------------------------------------------------

/** Every registered timing machine, in canonical registry order. */
const std::vector<std::string> kMachines = {"baseline", "grasp", "omega",
                                            "omega-sp-only"};

std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/** Digest of the run's full simulated outcome (same fields the
 *  sim-threads invariance tests pin: cycles, the complete stat tree,
 *  and the deterministic replay counters). */
std::uint64_t
machineDigest(const MemorySystem &m)
{
    std::ostringstream os;
    os << m.name() << '|' << m.cycles() << '|';
    const StatGroup *tree = m.statTree();
    EXPECT_NE(tree, nullptr);
    if (tree != nullptr) {
        JsonWriter w(os, /*pretty=*/false);
        tree->writeJson(w);
        EXPECT_TRUE(w.complete());
    }
    const ScriptReplayStats &rs = m.replayStats();
    os << '|' << rs.epochs << '|' << rs.merged_items << '|'
       << rs.merged_ops << '|' << rs.max_queue_depth << '|'
       << rs.concurrent_hook_items;
    return fnv1a(os.str());
}

void
runAlgo(AlgorithmKind algo, const Graph &g, MemorySystem *m,
        CheckpointCoordinator *coord, unsigned sim_threads = 1)
{
    EngineOptions opts;
    opts.checkpoint = coord;
    opts.sim_threads = sim_threads;
    if (algo == AlgorithmKind::PageRank) {
        // Multiple iterations so an interrupt can land strictly inside
        // the run (the registry dispatch simulates a single iteration).
        runPageRank(g, m, /*max_iters=*/4, 0.85, 0.0, opts);
    } else {
        runAlgorithmOnMachine(algo, g, m, opts);
    }
}

std::unique_ptr<MemorySystem>
makeMachine(const std::string &name)
{
    const MachineRegistryEntry &entry = machineEntry(name);
    return entry.make(entry.make_params());
}

/**
 * Interrupt @p algo on @p machine at iteration @p stop (test hook: no
 * signals, but the identical coordinator code path), then restore the
 * flushed checkpoint into a fresh machine and run to completion.
 * Returns the resumed machine's digest.
 */
std::uint64_t
interruptAndResumeDigest(const Graph &g, const std::string &machine,
                         AlgorithmKind algo, std::uint64_t stop,
                         unsigned sim_threads = 1)
{
    const std::string path = ::testing::TempDir() + "resume_" + machine +
                             "_" + std::to_string(stop) + ".snap";
    const std::string key = "test-run/" + machine;

    CheckpointCoordinator coord;
    coord.configureSave(path, /*every=*/0);
    coord.test_stop = [stop](std::uint64_t it) { return it == stop; };
    coord.beginRun(key);
    {
        auto m = makeMachine(machine);
        EXPECT_THROW(runAlgo(algo, g, m.get(), &coord, sim_threads),
                     CheckpointInterrupt);
    }

    CheckpointCoordinator resume;
    resume.setResumePayload(readSnapshotFile(path));
    EXPECT_TRUE(resume.resumePending());
    EXPECT_EQ(resume.resumeRunKey(), key);
    resume.beginRun(key);
    auto m = makeMachine(machine);
    runAlgo(algo, g, m.get(), &resume, sim_threads);
    EXPECT_FALSE(resume.resumePending()) << "resume never consumed";
    EXPECT_EQ(resume.restoredIteration(), stop);
    std::remove(path.c_str());
    return machineDigest(*m);
}

TEST(SnapshotResume, PageRankResumeMatchesUninterruptedOnEveryMachine)
{
    const Graph g = FuzzSpec{FuzzFamily::Rmat, 7, 256, 8, true}
                        .materialize();
    for (const std::string &machine : kMachines) {
        auto ref = makeMachine(machine);
        runAlgo(AlgorithmKind::PageRank, g, ref.get(), nullptr);
        const std::uint64_t uninterrupted = machineDigest(*ref);
        for (const std::uint64_t stop : {1u, 2u, 3u}) {
            EXPECT_EQ(interruptAndResumeDigest(g, machine,
                                               AlgorithmKind::PageRank,
                                               stop),
                      uninterrupted)
                << machine << " diverged after resume from iteration "
                << stop;
        }
    }
}

TEST(SnapshotResume, BfsResumeMatchesUninterruptedOnEveryMachine)
{
    // BFS drives the buffered push path with atomics and a live
    // frontier in the snapshot; the frontier itself round-trips.
    const Graph g = FuzzSpec{FuzzFamily::RoadMesh, 11, 225, 4, true}
                        .materialize();
    for (const std::string &machine : kMachines) {
        auto ref = makeMachine(machine);
        runAlgo(AlgorithmKind::BFS, g, ref.get(), nullptr);
        const std::uint64_t uninterrupted = machineDigest(*ref);
        for (const std::uint64_t stop : {1u, 3u}) {
            EXPECT_EQ(interruptAndResumeDigest(g, machine,
                                               AlgorithmKind::BFS, stop),
                      uninterrupted)
                << machine << " diverged after resume from iteration "
                << stop;
        }
    }
}

TEST(SnapshotResume, CheckpointCadenceDoesNotPerturbTheRun)
{
    // Saving every iteration is observation only: the digest must be
    // identical to a run that never checkpoints.
    const Graph g = FuzzSpec{FuzzFamily::Rmat, 7, 256, 8, true}
                        .materialize();
    const std::string path = ::testing::TempDir() + "cadence.snap";
    auto ref = makeMachine("omega");
    runAlgo(AlgorithmKind::BFS, g, ref.get(), nullptr);

    CheckpointCoordinator coord;
    coord.configureSave(path, /*every=*/1);
    coord.beginRun("cadence-run");
    auto m = makeMachine("omega");
    runAlgo(AlgorithmKind::BFS, g, m.get(), &coord);
    EXPECT_EQ(machineDigest(*m), machineDigest(*ref));
    // The file left behind is the last completed iteration's snapshot
    // and must verify cleanly.
    EXPECT_NO_THROW(readSnapshotFile(path));
    std::remove(path.c_str());
}

TEST(SnapshotResume, PostMortemDumpIsNotResumable)
{
    // A watchdog post-mortem uses the same container with
    // resumable=false; handing it to --resume must be refused with a
    // state error, not silently restored into a live run.
    SnapshotWriter w;
    w.putString("dead-run");
    w.putU64(0);
    w.putBool(false); // post-mortem marker
    w.putU64(0);      // no sections
    CheckpointCoordinator coord;
    EXPECT_THROW(coord.setResumePayload(w.bytes()), SnapshotStateError);
}

TEST(SnapshotResume, WrongAlgorithmSectionIsRejected)
{
    // A BFS checkpoint restored into a CC run: the section names
    // diverge and the restore must stop before touching any state.
    const Graph g = FuzzSpec{FuzzFamily::Rmat, 7, 256, 8, true}
                        .materialize();
    const std::string path = ::testing::TempDir() + "wrongalgo.snap";
    const std::string key = "shared-key";

    CheckpointCoordinator coord;
    coord.configureSave(path, 0);
    coord.test_stop = [](std::uint64_t it) { return it == 1; };
    coord.beginRun(key);
    {
        auto m = makeMachine("baseline");
        EXPECT_THROW(runAlgo(AlgorithmKind::BFS, g, m.get(), &coord),
                     CheckpointInterrupt);
    }

    CheckpointCoordinator resume;
    resume.setResumePayload(readSnapshotFile(path));
    resume.beginRun(key);
    auto m = makeMachine("baseline");
    EXPECT_THROW(runAlgo(AlgorithmKind::CC, g, m.get(), &resume),
                 SnapshotStateError);
    std::remove(path.c_str());
}

TEST(SnapshotResume, WrongGraphIsRejected)
{
    // Same machine, same algorithm, different graph: the property
    // arrays disagree in size and the payload must be refused (the
    // exact failing layer varies, but it is always a SnapshotError —
    // never a silent mis-restore).
    const Graph g1 = FuzzSpec{FuzzFamily::Rmat, 7, 256, 8, true}
                         .materialize();
    const Graph g2 = FuzzSpec{FuzzFamily::RoadMesh, 11, 225, 4, true}
                         .materialize();
    const std::string path = ::testing::TempDir() + "wronggraph.snap";
    const std::string key = "shared-key";

    CheckpointCoordinator coord;
    coord.configureSave(path, 0);
    coord.test_stop = [](std::uint64_t it) { return it == 1; };
    coord.beginRun(key);
    {
        auto m = makeMachine("baseline");
        EXPECT_THROW(runAlgo(AlgorithmKind::BFS, g1, m.get(), &coord),
                     CheckpointInterrupt);
    }

    CheckpointCoordinator resume;
    resume.setResumePayload(readSnapshotFile(path));
    resume.beginRun(key);
    auto m = makeMachine("baseline");
    EXPECT_THROW(runAlgo(AlgorithmKind::BFS, g2, m.get(), &resume),
                 SnapshotError);
    std::remove(path.c_str());
}

TEST(SnapshotResume, UnarmedFaultMachineRejectsArmedSnapshot)
{
    // The machine section encodes whether a fault campaign was armed;
    // restoring an armed snapshot into an unarmed machine (or vice
    // versa) is a state mismatch, not a silent drop of the injector.
    const Graph g = FuzzSpec{FuzzFamily::Rmat, 7, 256, 8, true}
                        .materialize();
    const std::string path = ::testing::TempDir() + "armmismatch.snap";
    const std::string key = "shared-key";
    std::string error;
    const auto plan = FaultPlan::parse("seed=23,ecc=0.03", &error);
    ASSERT_TRUE(plan.has_value()) << error;

    CheckpointCoordinator coord;
    coord.configureSave(path, 0);
    coord.test_stop = [](std::uint64_t it) { return it == 1; };
    coord.beginRun(key);
    {
        auto m = makeMachine("baseline");
        m->armFaults(*plan);
        EXPECT_THROW(runAlgo(AlgorithmKind::BFS, g, m.get(), &coord),
                     CheckpointInterrupt);
    }

    CheckpointCoordinator resume;
    resume.setResumePayload(readSnapshotFile(path));
    resume.beginRun(key);
    auto m = makeMachine("baseline"); // NOT armed
    EXPECT_THROW(runAlgo(AlgorithmKind::BFS, g, m.get(), &resume),
                 SnapshotStateError);
    std::remove(path.c_str());
}

} // namespace
} // namespace omega
