/**
 * @file
 * Tests for the per-core timing model: issue-width accounting, the
 * MSHR-bounded overlap window, blocking semantics and stall attribution.
 */

#include <gtest/gtest.h>

#include "sim/core_model.hh"

namespace omega {
namespace {

MachineParams
params(unsigned width = 8, unsigned mshrs = 4)
{
    MachineParams p = MachineParams::baseline();
    p.issue_width = width;
    p.mshrs = mshrs;
    return p;
}

TEST(CoreModel, ComputeAdvancesByIssueWidth)
{
    CoreModel c(params(8));
    c.compute(16);
    EXPECT_EQ(c.now(), 2u);
    EXPECT_EQ(c.instructions(), 16u);
    EXPECT_EQ(c.computeCycles(), 2u);
}

TEST(CoreModel, SubWidthOpsAccumulate)
{
    CoreModel c(params(8));
    for (int i = 0; i < 8; ++i)
        c.compute(1);
    EXPECT_EQ(c.now(), 1u);
    c.compute(4);
    EXPECT_EQ(c.now(), 1u); // residue of 4 ops, below a full cycle
    c.compute(4);
    EXPECT_EQ(c.now(), 2u);
}

TEST(CoreModel, BlockingLoadStallsFully)
{
    CoreModel c(params());
    c.issueMemory(100, /*blocking=*/true);
    EXPECT_EQ(c.now(), 100u);
    EXPECT_EQ(c.memStallCycles(), 100u);
}

TEST(CoreModel, NonBlockingLoadsOverlap)
{
    CoreModel c(params(8, 4));
    for (int i = 0; i < 4; ++i)
        c.issueMemory(100, false);
    // All four in flight: no stall yet.
    EXPECT_EQ(c.now(), 0u);
    EXPECT_EQ(c.memStallCycles(), 0u);
}

TEST(CoreModel, WindowFullStallsToOldest)
{
    CoreModel c(params(8, 2));
    c.issueMemory(100, false);
    c.issueMemory(100, false);
    c.issueMemory(100, false); // window full: waits for the first (t=100)
    EXPECT_EQ(c.now(), 100u);
    EXPECT_EQ(c.memStallCycles(), 100u);
}

TEST(CoreModel, DrainWaitsForAllOutstanding)
{
    CoreModel c(params(8, 4));
    c.issueMemory(50, false);
    c.issueMemory(200, false);
    c.drain();
    EXPECT_EQ(c.now(), 200u);
}

TEST(CoreModel, SerializeChargesAtomicBucket)
{
    CoreModel c(params());
    c.serialize(16);
    EXPECT_EQ(c.now(), 16u);
    EXPECT_EQ(c.atomicStallCycles(), 16u);
    EXPECT_EQ(c.memStallCycles(), 0u);
}

TEST(CoreModel, StallAttributionByKind)
{
    CoreModel c(params());
    c.issueMemory(10, true, StallKind::Atomic);
    EXPECT_EQ(c.atomicStallCycles(), 10u);
    c.issueMemory(10, true, StallKind::Memory);
    EXPECT_EQ(c.memStallCycles(), 10u);
}

TEST(CoreModel, SyncToChargesSyncStall)
{
    CoreModel c(params());
    c.compute(8);
    c.syncTo(50);
    EXPECT_EQ(c.now(), 50u);
    EXPECT_EQ(c.syncStallCycles(), 49u);
    // syncTo to the past is a no-op.
    c.syncTo(10);
    EXPECT_EQ(c.now(), 50u);
}

TEST(CoreModel, SyncToDrainsFirst)
{
    CoreModel c(params(8, 4));
    c.issueMemory(100, false);
    c.syncTo(20); // outstanding load completes at 100 > 20
    EXPECT_EQ(c.now(), 100u);
}

TEST(CoreModel, BusyCountsAsCompute)
{
    CoreModel c(params());
    c.busy(7);
    EXPECT_EQ(c.now(), 7u);
    EXPECT_EQ(c.computeCycles(), 7u);
    EXPECT_EQ(c.instructions(), 0u);
}

TEST(CoreModel, ShortOpsDontOccupyWindow)
{
    // Latency-1 hits never enter the window, so they can't cause
    // window-full stalls.
    CoreModel c(params(8, 1));
    for (int i = 0; i < 100; ++i)
        c.issueMemory(1, false);
    EXPECT_EQ(c.memStallCycles(), 0u);
}

TEST(CoreModel, ResetRestoresInitialState)
{
    CoreModel c(params());
    c.compute(80);
    c.issueMemory(100, true);
    c.reset();
    EXPECT_EQ(c.now(), 0u);
    EXPECT_EQ(c.instructions(), 0u);
    EXPECT_EQ(c.memStallCycles(), 0u);
    EXPECT_EQ(c.computeCycles(), 0u);
}

TEST(CoreModel, ThroughputMatchesMlpModel)
{
    // With window K and latency L, N independent misses take about
    // N*L/K cycles once the pipe is full.
    CoreModel c(params(8, 8));
    const int N = 1000;
    for (int i = 0; i < N; ++i)
        c.issueMemory(80, false);
    c.drain();
    const double expected = N * 80.0 / 8.0;
    EXPECT_NEAR(static_cast<double>(c.now()), expected, expected * 0.05);
}

} // namespace
} // namespace omega
