/**
 * @file
 * Tests for the engine's edge-task segmentation: hubs are split across
 * scheduling units (as Ligra parallelizes within high-degree vertices),
 * without changing functional behaviour.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "algorithms/pagerank.hh"
#include "algorithms/reference.hh"
#include "framework/engine.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"
#include "sim/baseline_machine.hh"
#include "util/rng.hh"

namespace omega {
namespace {

/** A star graph: one hub pointing at n-1 spokes. */
Graph
starGraph(VertexId n)
{
    EdgeList edges;
    for (VertexId v = 1; v < n; ++v)
        edges.push_back({0, v, 1});
    return buildGraph(n, std::move(edges));
}

TEST(EngineTasks, UpdateRunsOncePerEdgeRegardlessOfTaskSize)
{
    Graph g = starGraph(1000); // hub degree 999 >> any task cap
    for (const unsigned cap : {8u, 64u, 256u, 4096u}) {
        EngineOptions opts;
        opts.max_edges_per_task = cap;
        PropertyRegistry props(g.numVertices());
        Engine eng(g, props, pageRankUpdateFn(), nullptr, opts);
        std::map<VertexId, int> seen;
        eng.edgeMap(VertexSubset::all(g.numVertices()),
                    [&](unsigned, VertexId, VertexId d, std::int32_t) {
                        ++seen[d];
                        return EdgeUpdateResult{};
                    },
                    false);
        EXPECT_EQ(seen.size(), 999u) << "cap " << cap;
        for (const auto &[v, count] : seen)
            ASSERT_EQ(count, 1) << "cap " << cap << " dst " << v;
    }
}

TEST(EngineTasks, VertexHookRunsOncePerVertexEvenWhenSplit)
{
    Graph g = starGraph(5000);
    EngineOptions opts;
    opts.max_edges_per_task = 64; // hub split into ~78 segments
    PropertyRegistry props(g.numVertices());
    Engine eng(g, props, pageRankUpdateFn(), nullptr, opts);
    std::map<VertexId, int> hooks;
    eng.edgeMap(VertexSubset::all(g.numVertices()),
                [&](unsigned, VertexId, VertexId, std::int32_t) {
                    return EdgeUpdateResult{};
                },
                false, [&](unsigned, VertexId u) { ++hooks[u]; });
    // Only the hub has out-edges but every vertex gets a first segment;
    // the hook fires once for each ACTIVE vertex.
    for (const auto &[v, count] : hooks)
        ASSERT_EQ(count, 1) << v;
    EXPECT_EQ(hooks.size(), g.numVertices());
}

TEST(EngineTasks, HubIsSharedAcrossCores)
{
    Graph g = starGraph(10000);
    EngineOptions opts;
    opts.max_edges_per_task = 64;
    PropertyRegistry props(g.numVertices());
    auto &prop = props.create<double>("p", 0.0);
    BaselineMachine mach(
        MachineParams::baseline().scaledCapacities(1.0 / 64));
    Engine eng(g, props, pageRankUpdateFn(), &mach, opts);
    eng.setAtomicTarget(&prop);
    eng.configureMachine();

    std::set<unsigned> cores_used;
    eng.edgeMap(VertexSubset::all(g.numVertices()),
                [&](unsigned core, VertexId, VertexId, std::int32_t) {
                    cores_used.insert(core);
                    return EdgeUpdateResult{};
                },
                false);
    // One giant hub: without splitting, exactly one core would process
    // every edge.
    EXPECT_GT(cores_used.size(), 8u);
}

TEST(EngineTasks, SparseModeSplitsHubsToo)
{
    Graph g = starGraph(8000);
    EngineOptions opts;
    opts.max_edges_per_task = 64;
    // Keep the single-vertex frontier in sparse mode.
    opts.dense_threshold_denom = 1;
    PropertyRegistry props(g.numVertices());
    auto &prop = props.create<double>("p", 0.0);
    BaselineMachine mach(
        MachineParams::baseline().scaledCapacities(1.0 / 64));
    Engine eng(g, props, pageRankUpdateFn(), &mach, opts);
    eng.setAtomicTarget(&prop);
    eng.configureMachine();

    std::set<unsigned> cores_used;
    int edges_seen = 0;
    eng.edgeMap(VertexSubset::single(g.numVertices(), 0),
                [&](unsigned core, VertexId, VertexId, std::int32_t) {
                    cores_used.insert(core);
                    ++edges_seen;
                    return EdgeUpdateResult{};
                },
                false);
    EXPECT_EQ(edges_seen, 7999);
    EXPECT_GT(cores_used.size(), 8u);
}

TEST(EngineTasks, FunctionalResultIndependentOfTaskSize)
{
    Rng rng(5);
    Graph g = buildGraph(1 << 9, generateRmat(9, 10, rng));
    const auto ref = refPageRank(g, 5, 0.85);
    for (const unsigned cap : {4u, 32u, 1024u}) {
        EngineOptions opts;
        opts.max_edges_per_task = cap;
        auto pr = runPageRank(g, nullptr, 5, 0.85, 0.0, opts);
        for (VertexId v = 0; v < g.numVertices(); ++v)
            ASSERT_NEAR(pr.rank[v], ref[v], 1e-9) << "cap " << cap;
    }
}

TEST(EngineTasks, CyclesDeterministicPerTaskSize)
{
    Rng rng(6);
    Graph g = buildGraph(1 << 9, generateRmat(9, 8, rng));
    for (const unsigned cap : {16u, 256u}) {
        EngineOptions opts;
        opts.max_edges_per_task = cap;
        Cycles c1;
        Cycles c2;
        {
            BaselineMachine m(
                MachineParams::baseline().scaledCapacities(1.0 / 64));
            runPageRank(g, &m, 1, 0.85, 0.0, opts);
            c1 = m.cycles();
        }
        {
            BaselineMachine m(
                MachineParams::baseline().scaledCapacities(1.0 / 64));
            runPageRank(g, &m, 1, 0.85, 0.0, opts);
            c2 = m.cycles();
        }
        EXPECT_EQ(c1, c2) << "cap " << cap;
    }
}

TEST(EngineTasks, SplittingReducesTailLatency)
{
    // With a giant hub, coarse tasks leave one core working alone; the
    // split version balances and finishes sooner.
    Graph g = starGraph(20000);
    auto run = [&](unsigned cap) {
        EngineOptions opts;
        opts.max_edges_per_task = cap;
        BaselineMachine m(
            MachineParams::baseline().scaledCapacities(1.0 / 64));
        PropertyRegistry props(g.numVertices());
        auto &prop = props.create<double>("p", 0.0);
        Engine eng(g, props, pageRankUpdateFn(), &m, opts);
        eng.setAtomicTarget(&prop);
        eng.configureMachine();
        eng.edgeMap(VertexSubset::all(g.numVertices()),
                    [&](unsigned, VertexId, VertexId, std::int32_t) {
                        EdgeUpdateResult r;
                        r.performed_atomic = true;
                        return r;
                    },
                    false);
        eng.finishIteration();
        return m.cycles();
    };
    const Cycles split = run(64);
    const Cycles coarse = run(1u << 30);
    EXPECT_LT(split, coarse / 2);
}

} // namespace
} // namespace omega
