/**
 * @file
 * Disk round-trip tests for the edge-list I/O (SNAP-compatible format),
 * exercising the path a user takes to feed real datasets into omega_sim.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <unistd.h>
#include <filesystem>
#include <fstream>

#include "graph/builder.hh"
#include "graph/generators.hh"
#include "graph/io.hh"
#include "util/rng.hh"

namespace omega {
namespace {

class IoFiles : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("omega_io_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

TEST_F(IoFiles, SaveLoadRoundTrip)
{
    Rng rng(3);
    Graph g = buildGraph(1 << 8, generateRmat(8, 6, rng));
    saveGraphFile(path("g.el"), g);
    Graph back = loadGraphFile(path("g.el"));
    ASSERT_EQ(back.numArcs(), g.numArcs());
    // An edge list cannot represent trailing isolated vertices, so the
    // loaded graph may be smaller — but never larger.
    ASSERT_LE(back.numVertices(), g.numVertices());
    // Degrees and weights survive byte-for-byte.
    for (VertexId v = 0; v < back.numVertices(); ++v) {
        ASSERT_EQ(back.outDegree(v), g.outDegree(v)) << v;
        const auto a = g.outWeights(v);
        const auto b = back.outWeights(v);
        for (std::size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]);
    }
}

TEST_F(IoFiles, LoadAppliesBuildOptions)
{
    {
        std::ofstream os(path("dup.el"));
        os << "0 1 5\n0 1 9\n1 1 2\n1 2 3\n";
    }
    Graph g = loadGraphFile(path("dup.el"));
    // Dedup + self-loop removal by default.
    EXPECT_EQ(g.numArcs(), 2u);
    BuildOptions keep;
    keep.deduplicate = false;
    keep.remove_self_loops = false;
    Graph raw = loadGraphFile(path("dup.el"), keep);
    EXPECT_EQ(raw.numArcs(), 4u);
}

TEST_F(IoFiles, LoadSymmetrizes)
{
    {
        std::ofstream os(path("tri.el"));
        os << "0 1\n1 2\n2 0\n";
    }
    BuildOptions opts;
    opts.symmetrize = true;
    Graph g = loadGraphFile(path("tri.el"), opts);
    EXPECT_TRUE(g.symmetric());
    EXPECT_EQ(g.numArcs(), 6u);
    EXPECT_EQ(g.numEdges(), 3u);
}

TEST_F(IoFiles, SnapStyleCommentsAndBlankLines)
{
    {
        std::ofstream os(path("snap.el"));
        os << "# Directed graph (each unordered pair of nodes is saved "
              "once)\n"
           << "# FromNodeId\tToNodeId\n"
           << "\n"
           << "0\t5\n"
           << "5\t7\n";
    }
    Graph g = loadGraphFile(path("snap.el"));
    EXPECT_EQ(g.numVertices(), 8u);
    EXPECT_EQ(g.numArcs(), 2u);
}

TEST_F(IoFiles, EmptyFileYieldsEmptyGraph)
{
    {
        std::ofstream os(path("empty.el"));
        os << "# nothing here\n";
    }
    Graph g = loadGraphFile(path("empty.el"));
    EXPECT_EQ(g.numVertices(), 0u);
    EXPECT_EQ(g.numArcs(), 0u);
}

TEST_F(IoFiles, RoundTripPreservesIsolatedTrailingVertices)
{
    // The "# vertices N" header pins the count, so trailing vertices
    // with no edges survive a disk round trip.
    EdgeList edges;
    edges.push_back({0, 1, 1});
    Graph g = buildGraph(10, std::move(edges));
    saveGraphFile(path("iso.el"), g);
    Graph back = loadGraphFile(path("iso.el"));
    EXPECT_EQ(back.numVertices(), 10u);
    EXPECT_EQ(back.numArcs(), 1u);
}

TEST_F(IoFiles, RejectsNegativeVertexIds)
{
    {
        std::ofstream os(path("neg.el"));
        os << "0 1\n-3 2\n";
    }
    EXPECT_DEATH((void)loadGraphFile(path("neg.el")),
                 "invalid source vertex");
}

TEST_F(IoFiles, RejectsNonNumericTokens)
{
    {
        std::ofstream os(path("garbage.el"));
        os << "0 1\n2 banana\n";
    }
    EXPECT_DEATH((void)loadGraphFile(path("garbage.el")),
                 "invalid destination vertex");
}

TEST_F(IoFiles, RejectsTruncatedEdgeLine)
{
    {
        std::ofstream os(path("trunc.el"));
        os << "0 1\n7\n";
    }
    EXPECT_DEATH((void)loadGraphFile(path("trunc.el")),
                 "malformed edge list line 2");
}

TEST_F(IoFiles, RejectsOverflowingVertexIds)
{
    {
        std::ofstream os(path("huge.el"));
        // 2^64 overflows, and VertexId::max() itself is rejected because
        // numVertices = max_vertex + 1 would wrap to zero.
        os << "18446744073709551616 1\n";
    }
    EXPECT_DEATH((void)loadGraphFile(path("huge.el")),
                 "invalid source vertex");
    {
        std::ofstream os(path("wrap.el"));
        os << "0 4294967295\n";
    }
    EXPECT_DEATH((void)loadGraphFile(path("wrap.el")),
                 "invalid destination vertex");
}

TEST_F(IoFiles, RejectsOutOfRangeWeights)
{
    {
        std::ofstream os(path("weight.el"));
        os << "0 1 9999999999999\n";
    }
    EXPECT_DEATH((void)loadGraphFile(path("weight.el")),
                 "invalid weight");
}

TEST_F(IoFiles, RejectsTrailingGarbage)
{
    {
        std::ofstream os(path("extra.el"));
        os << "0 1 2 3\n";
    }
    EXPECT_DEATH((void)loadGraphFile(path("extra.el")),
                 "trailing token");
}

TEST_F(IoFiles, RejectsEdgeOutsideDeclaredRange)
{
    {
        std::ofstream os(path("oob.el"));
        os << "# vertices 4 arcs 2 directed\n"
           << "0 1\n"
           << "2 9\n";
    }
    EXPECT_DEATH((void)loadGraphFile(path("oob.el")),
                 "declares 4 vertices");
}

TEST_F(IoFiles, RejectsCorruptVertexHeader)
{
    {
        std::ofstream os(path("badhdr.el"));
        os << "# vertices -12 arcs 1 directed\n"
           << "0 1\n";
    }
    EXPECT_DEATH((void)loadGraphFile(path("badhdr.el")),
                 "invalid vertex count");
}

TEST_F(IoFiles, NegativeWeightsAreValid)
{
    {
        std::ofstream os(path("negw.el"));
        os << "0 1 -5\n";
    }
    Graph g = loadGraphFile(path("negw.el"));
    ASSERT_EQ(g.numArcs(), 1u);
    EXPECT_EQ(g.outWeights(0)[0], -5);
}

TEST_F(IoFiles, LargeRoundTripPreservesDegreeDistribution)
{
    Rng rng(9);
    Graph g = buildGraph(1 << 12, generateRmat(12, 8, rng));
    saveGraphFile(path("big.el"), g);
    Graph back = loadGraphFile(path("big.el"));
    EdgeId max_in_a = 0;
    EdgeId max_in_b = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        max_in_a = std::max(max_in_a, g.inDegree(v));
    for (VertexId v = 0; v < back.numVertices(); ++v)
        max_in_b = std::max(max_in_b, back.inDegree(v));
    EXPECT_EQ(max_in_a, max_in_b);
}

} // namespace
} // namespace omega
