/**
 * @file
 * Disk round-trip tests for the edge-list I/O (SNAP-compatible format),
 * exercising the path a user takes to feed real datasets into omega_sim.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <unistd.h>
#include <filesystem>
#include <fstream>

#include "graph/builder.hh"
#include "graph/generators.hh"
#include "graph/io.hh"
#include "util/rng.hh"

namespace omega {
namespace {

class IoFiles : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("omega_io_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

TEST_F(IoFiles, SaveLoadRoundTrip)
{
    Rng rng(3);
    Graph g = buildGraph(1 << 8, generateRmat(8, 6, rng));
    saveGraphFile(path("g.el"), g);
    Graph back = loadGraphFile(path("g.el"));
    ASSERT_EQ(back.numArcs(), g.numArcs());
    // An edge list cannot represent trailing isolated vertices, so the
    // loaded graph may be smaller — but never larger.
    ASSERT_LE(back.numVertices(), g.numVertices());
    // Degrees and weights survive byte-for-byte.
    for (VertexId v = 0; v < back.numVertices(); ++v) {
        ASSERT_EQ(back.outDegree(v), g.outDegree(v)) << v;
        const auto a = g.outWeights(v);
        const auto b = back.outWeights(v);
        for (std::size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i]);
    }
}

TEST_F(IoFiles, LoadAppliesBuildOptions)
{
    {
        std::ofstream os(path("dup.el"));
        os << "0 1 5\n0 1 9\n1 1 2\n1 2 3\n";
    }
    Graph g = loadGraphFile(path("dup.el"));
    // Dedup + self-loop removal by default.
    EXPECT_EQ(g.numArcs(), 2u);
    BuildOptions keep;
    keep.deduplicate = false;
    keep.remove_self_loops = false;
    Graph raw = loadGraphFile(path("dup.el"), keep);
    EXPECT_EQ(raw.numArcs(), 4u);
}

TEST_F(IoFiles, LoadSymmetrizes)
{
    {
        std::ofstream os(path("tri.el"));
        os << "0 1\n1 2\n2 0\n";
    }
    BuildOptions opts;
    opts.symmetrize = true;
    Graph g = loadGraphFile(path("tri.el"), opts);
    EXPECT_TRUE(g.symmetric());
    EXPECT_EQ(g.numArcs(), 6u);
    EXPECT_EQ(g.numEdges(), 3u);
}

TEST_F(IoFiles, SnapStyleCommentsAndBlankLines)
{
    {
        std::ofstream os(path("snap.el"));
        os << "# Directed graph (each unordered pair of nodes is saved "
              "once)\n"
           << "# FromNodeId\tToNodeId\n"
           << "\n"
           << "0\t5\n"
           << "5\t7\n";
    }
    Graph g = loadGraphFile(path("snap.el"));
    EXPECT_EQ(g.numVertices(), 8u);
    EXPECT_EQ(g.numArcs(), 2u);
}

TEST_F(IoFiles, EmptyFileYieldsEmptyGraph)
{
    {
        std::ofstream os(path("empty.el"));
        os << "# nothing here\n";
    }
    Graph g = loadGraphFile(path("empty.el"));
    EXPECT_EQ(g.numVertices(), 0u);
    EXPECT_EQ(g.numArcs(), 0u);
}

TEST_F(IoFiles, LargeRoundTripPreservesDegreeDistribution)
{
    Rng rng(9);
    Graph g = buildGraph(1 << 12, generateRmat(12, 8, rng));
    saveGraphFile(path("big.el"), g);
    Graph back = loadGraphFile(path("big.el"));
    EdgeId max_in_a = 0;
    EdgeId max_in_b = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        max_in_a = std::max(max_in_a, g.inDegree(v));
    for (VertexId v = 0; v < back.numVertices(); ++v)
        max_in_b = std::max(max_in_b, back.inDegree(v));
    EXPECT_EQ(max_in_a, max_in_b);
}

} // namespace
} // namespace omega
