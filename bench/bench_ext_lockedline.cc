/**
 * @file
 * Extension bench (paper section IX): locked cache lines vs OMEGA's
 * word-granularity scratchpads. Locking hot lines in a cache captures
 * the same resident set with fewer hardware changes, but every remote
 * access still moves a 64 B line; the paper argues the on-chip traffic
 * overhead remains. This harness models that alternative by switching
 * the scratchpad network to line-size transfers.
 */

#include <iostream>

#include "algorithms/algorithms.hh"
#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_ext_lockedline", argc, argv);
    printBanner(std::cout,
                "Extension (section IX): word-granularity scratchpads vs "
                "locked cache lines (SSSP)");

    // The locked-cache alternative has no PISC: cores execute the
    // atomics against the locked lines, and every remote access moves a
    // full 64 B line. SSSP exercises remote reads heavily (per-edge
    // source reads), so it shows the traffic difference clearly.
    struct Variant
    {
        const char *name;
        MachineKind kind;
        bool word;
    };
    const Variant variants[] = {
        {"OMEGA (word packets + PISC)", MachineKind::Omega, true},
        {"scratchpads, no PISC (word)", MachineKind::OmegaSpOnly, true},
        {"locked-line (64B, no PISC)", MachineKind::OmegaSpOnly, false},
    };

    Table t({"dataset", "variant", "on-chip MB", "flits", "cycles",
             "speedup vs baseline"});
    SweepRunner sweep;
    for (const auto &ds : {"rMat", "lj"}) {
        const DatasetSpec spec = *findDataset(ds);
        sweep.add(spec, AlgorithmKind::SSSP, MachineKind::Baseline);
        for (const Variant &v : variants) {
            const bool word = v.word;
            sweep.add(spec, AlgorithmKind::SSSP, v.kind,
                      [word](MachineParams &p) {
                          p.sp_word_granularity = word;
                      });
        }
    }
    sweep.run();
    for (const auto &ds : {"rMat", "lj"}) {
        const DatasetSpec spec = *findDataset(ds);
        const RunOutcome base =
            runOn(spec, AlgorithmKind::SSSP, MachineKind::Baseline);
        for (const Variant &v : variants) {
            const RunOutcome om = runOn(
                spec, AlgorithmKind::SSSP, v.kind,
                [&](MachineParams &p) { p.sp_word_granularity = v.word; });
            t.row()
                .cell(spec.name)
                .cell(v.name)
                .cell(static_cast<double>(om.stats.onchip_bytes) / 1e6, 2)
                .cell(om.stats.onchip_flits)
                .cell(om.cycles)
                .cell(formatSpeedup(static_cast<double>(base.cycles) /
                                    static_cast<double>(om.cycles)));
        }
    }
    t.print(std::cout);

    std::cout << "\nPaper section IX: line-granularity locking keeps the "
                 "residency benefit but pays the on-chip communication "
                 "overhead OMEGA's word packets avoid.\n";
    return 0;
}
