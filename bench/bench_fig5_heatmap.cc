/**
 * @file
 * Fig 5 reproduction: heat map of vtxProp accesses hitting the top-20%
 * most-connected vertices, algorithms x datasets.
 *
 * Uses the counting ProfileMachine (no timing model) so the full sweep —
 * including twitter, which the paper had to omit "because of its extreme
 * profiling runtime" — stays fast enough to include here.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_fig5_heatmap", argc, argv);
    printBanner(std::cout, "Fig 5: % of vtxProp accesses to the 20% "
                           "most-connected vertices (heat map)");

    const std::vector<AlgorithmKind> algos{
        AlgorithmKind::PageRank, AlgorithmKind::BFS, AlgorithmKind::SSSP,
        AlgorithmKind::BC,       AlgorithmKind::Radii,
        AlgorithmKind::CC,       AlgorithmKind::TC,
        AlgorithmKind::KC};

    std::vector<std::string> headers{"dataset"};
    for (AlgorithmKind a : algos)
        headers.push_back(algorithmName(a));
    Table t(headers);

    for (const auto &spec : allDatasets()) {
        auto &row = t.row().cell(spec.name);
        const Graph &g = datasetGraph(spec);
        for (AlgorithmKind algo : algos) {
            if (algorithmMeta(algo).needs_symmetric && spec.directed) {
                row.cell("-");
                continue;
            }
            ProfileMachine profiler(
                machineFor(MachineKind::Baseline, spec));
            runAlgorithmOnMachine(algo, g, &profiler);
            row.cell(100.0 * profiler.report().hotVertexAccessFraction(),
                     0);
        }
    }
    t.print(std::cout);

    std::cout << "\nPaper: up to 99 on power-law graphs, ~20-30 on road "
                 "networks (rPA/rCA/USA rows).\n";
    return 0;
}
