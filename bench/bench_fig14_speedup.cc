/**
 * @file
 * Fig 14 reproduction: OMEGA speedup over the baseline CMP, algorithms x
 * datasets. The paper's headline result: 2x on average, 2.8x for
 * PageRank, limited gains for TC (compute bound) and for non-power-law
 * road networks that exceed the scratchpads.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_fig14_speedup", argc, argv);
    printBanner(std::cout,
                "Fig 14: OMEGA speedup over the baseline CMP (Ligra)");

    const std::vector<AlgorithmKind> algos{
        AlgorithmKind::PageRank, AlgorithmKind::BFS, AlgorithmKind::SSSP,
        AlgorithmKind::BC,       AlgorithmKind::Radii,
        AlgorithmKind::CC,       AlgorithmKind::TC,
        AlgorithmKind::KC};

    Table t({"algorithm", "dataset", "baseline cycles", "omega cycles",
             "speedup"});
    std::vector<double> all_speedups;
    std::map<std::string, std::vector<double>> per_algo;

    SweepRunner sweep;
    for (AlgorithmKind algo : algos) {
        for (const auto &spec : datasetsFor(algo, simulationDatasets())) {
            for (MachineKind kind : paperMachineKinds())
                sweep.add(spec, algo, kind);
        }
    }
    sweep.run();

    for (AlgorithmKind algo : algos) {
        // The paper runs the symmetric-only algorithms (CC/TC/KC) on the
        // undirected datasets; everything else on the directed ones.
        for (const auto &spec :
             datasetsFor(algo, simulationDatasets())) {
            const RunOutcome base =
                runOn(spec, algo, MachineKind::Baseline);
            const RunOutcome om = runOn(spec, algo, MachineKind::Omega);
            const double speedup = static_cast<double>(base.cycles) /
                                   static_cast<double>(om.cycles);
            all_speedups.push_back(speedup);
            per_algo[algorithmName(algo)].push_back(speedup);
            t.row()
                .cell(algorithmName(algo))
                .cell(spec.name)
                .cell(base.cycles)
                .cell(om.cycles)
                .cell(formatSpeedup(speedup));
        }
    }
    t.print(std::cout);

    std::cout << "\nPer-algorithm geometric means:\n";
    Table s({"algorithm", "geomean speedup"});
    for (const auto &[name, v] : per_algo)
        s.row().cell(name).cell(formatSpeedup(geoMean(v)));
    s.print(std::cout);

    std::cout << "\nOverall geomean: " << formatSpeedup(geoMean(all_speedups))
              << "  (paper: 2x average; PageRank 2.8x; BFS/Radii ~2x; "
                 "SSSP ~1.6x; TC limited)\n";
    return 0;
}
