/**
 * @file
 * Fig 16 reproduction: DRAM bandwidth utilization of PageRank.
 * Paper: OMEGA improves off-chip bandwidth utilization by 2.28x on
 * average — the cores, freed from blocking atomics and random misses,
 * stream the edgeList much harder.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_fig16_dram_bw", argc, argv);
    printBanner(std::cout,
                "Fig 16: DRAM bandwidth utilization (PageRank)");

    Table t({"dataset", "baseline GB/s", "omega GB/s", "baseline util%",
             "omega util%", "improvement"});
    std::vector<double> improvements;
    SweepRunner sweep;
    for (const auto &spec : powerLawDatasets()) {
        sweep.add(spec, AlgorithmKind::PageRank, MachineKind::Baseline);
        sweep.add(spec, AlgorithmKind::PageRank, MachineKind::Omega);
    }
    sweep.run();
    for (const auto &spec : powerLawDatasets()) {
        const RunOutcome base =
            runOn(spec, AlgorithmKind::PageRank, MachineKind::Baseline);
        const RunOutcome om =
            runOn(spec, AlgorithmKind::PageRank, MachineKind::Omega);
        const double bb = base.stats.dramBandwidthGBs(2.0);
        const double ob = om.stats.dramBandwidthGBs(2.0);
        const double impr = bb > 0.0 ? ob / bb : 0.0;
        improvements.push_back(impr);
        t.row()
            .cell(spec.name)
            .cell(bb, 2)
            .cell(ob, 2)
            .cell(100.0 * base.stats.dramBandwidthUtilization(base.params),
                  1)
            .cell(100.0 * om.stats.dramBandwidthUtilization(om.params), 1)
            .cell(formatSpeedup(impr));
    }
    t.print(std::cout);

    std::cout << "\nGeomean utilization improvement: "
              << formatSpeedup(geoMean(improvements))
              << "  (paper: 2.28x average)\n";
    return 0;
}
