/**
 * @file
 * Fig 19 reproduction: scratchpad-size sensitivity on lj.
 *
 * The paper holds the 16 MB L2 fixed and shrinks the scratchpads
 * 16 MB -> 8 MB -> 4 MB; OMEGA still delivers 1.4x (PageRank) and 1.5x
 * (BFS) at 4 MB, which holds only 10%/20% of the respective vtxProp.
 * Capacities here are scaled by lj's capacity_scale like everything else.
 */

#include <iostream>

#include "bench_common.hh"
#include "graph/reorder.hh"
#include "omega/omega_machine.hh"
#include "sim/baseline_machine.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_fig19_sp_sensitivity", argc, argv);
    printBanner(std::cout,
                "Fig 19: scratchpad size sensitivity (lj)");

    const DatasetSpec spec = *findDataset("lj");
    // When the scratchpads hold well under 20% of the vertices, the
    // nth-element ordering is not enough: the ids below the capacity
    // boundary must be the actual hottest vertices. The paper's section
    // VI makes exactly this point — use the full in-degree sort here.
    const Graph g =
        reorderGraph(buildDataset(spec), ReorderKind::InDegreeSort);
    Table t({"sp size (paper-equip)", "algorithm", "baseline cycles",
             "omega cycles", "speedup"});

    for (AlgorithmKind algo :
         {AlgorithmKind::PageRank, AlgorithmKind::BFS}) {
        BaselineMachine base_machine(
            machineFor(MachineKind::Baseline, spec));
        const Cycles base_cycles =
            runAlgorithmOnMachine(algo, g, &base_machine);
        for (const double mb : {16.0, 8.0, 4.0}) {
            MachineParams params = machineFor(MachineKind::Omega, spec);
            // Shrink only the scratchpads; L2 stays as configured.
            params.sp_total_bytes = static_cast<std::uint64_t>(
                mb * 1024 * 1024 * spec.capacity_scale);
            params.sp_total_bytes =
                std::max<std::uint64_t>(params.sp_total_bytes, 8192);
            OmegaMachine om(params);
            const Cycles omega_cycles =
                runAlgorithmOnMachine(algo, g, &om);
            const double resident_pct =
                100.0 * om.residentVertices() / g.numVertices();
            t.row()
                .cell(formatDouble(mb, 0) + "MB")
                .cell(algorithmName(algo) + " (" +
                      formatDouble(resident_pct, 0) + "% resident)")
                .cell(base_cycles)
                .cell(omega_cycles)
                .cell(formatSpeedup(static_cast<double>(base_cycles) /
                                    static_cast<double>(omega_cycles)));
        }
    }
    t.print(std::cout);

    std::cout << "\nPaper: 1.4x (PageRank) and 1.5x (BFS) remain at 4MB, "
                 "which holds 10% / 20% of the vtxProp.\n";
    return 0;
}
