/**
 * @file
 * Extension bench (paper section IV): push-with-atomics (Ligra-style)
 * vs pull-without-atomics (GraphMat-style) PageRank on both machines.
 *
 * The paper notes that atomic-free frameworks "partition the dataset so
 * that only a single thread modifies vtxProp at a time" and that OMEGA's
 * optimization then targets the operations on vtxProp rather than the
 * atomics. Pull mode trades the atomics for per-edge random READS of the
 * sources' ranks — which OMEGA still serves from the scratchpads.
 */

#include <iostream>

#include "algorithms/pagerank.hh"
#include "bench_common.hh"
#include "omega/omega_machine.hh"
#include "sim/baseline_machine.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

namespace {

struct Row
{
    Cycles cycles;
    StatsReport stats;
};

template <typename RunF>
Row
measure(const DatasetSpec &spec, MachineKind kind, RunF &&run)
{
    Row row;
    if (kind == MachineKind::Baseline) {
        BaselineMachine m(machineFor(kind, spec));
        run(&m);
        row.cycles = m.cycles();
        row.stats = m.report();
    } else {
        OmegaMachine m(machineFor(kind, spec));
        run(&m);
        row.cycles = m.cycles();
        row.stats = m.report();
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchSession session("bench_ext_pull", argc, argv);
    printBanner(std::cout,
                "Extension (section IV): push+atomics vs pull (PageRank)");

    Table t({"dataset", "direction", "baseline cycles", "omega cycles",
             "omega speedup", "atomics", "sp accesses"});
    for (const auto &ds : {"rMat", "lj"}) {
        const DatasetSpec spec = *findDataset(ds);
        const Graph &g = datasetGraph(spec);

        const Row push_b =
            measure(spec, MachineKind::Baseline,
                    [&](MemorySystem *m) { runPageRank(g, m, 1); });
        const Row push_o =
            measure(spec, MachineKind::Omega,
                    [&](MemorySystem *m) { runPageRank(g, m, 1); });
        const Row pull_b =
            measure(spec, MachineKind::Baseline,
                    [&](MemorySystem *m) { runPageRankPull(g, m, 1); });
        const Row pull_o =
            measure(spec, MachineKind::Omega,
                    [&](MemorySystem *m) { runPageRankPull(g, m, 1); });

        t.row()
            .cell(spec.name)
            .cell("push (Ligra-style)")
            .cell(push_b.cycles)
            .cell(push_o.cycles)
            .cell(formatSpeedup(static_cast<double>(push_b.cycles) /
                                static_cast<double>(push_o.cycles)))
            .cell(push_o.stats.atomics_total)
            .cell(push_o.stats.sp_accesses);
        t.row()
            .cell(spec.name)
            .cell("pull (GraphMat-style)")
            .cell(pull_b.cycles)
            .cell(pull_o.cycles)
            .cell(formatSpeedup(static_cast<double>(pull_b.cycles) /
                                static_cast<double>(pull_o.cycles)))
            .cell(pull_o.stats.atomics_total)
            .cell(pull_o.stats.sp_accesses);
    }
    t.print(std::cout);

    std::cout << "\nPull eliminates the atomics (and with them most of "
                 "OMEGA's PISC benefit) but keeps the random source "
                 "reads that the scratchpads absorb; push leans on the "
                 "PISC offload. Both run unchanged on either machine.\n";
    return 0;
}
