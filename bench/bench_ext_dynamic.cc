/**
 * @file
 * Extension bench (paper section IX): dynamic graphs. As edges churn,
 * the scratchpad-resident set identified by the original reordering goes
 * stale; re-running the linear-time nth-element pass restores OMEGA's
 * benefit. This harness measures PageRank speedup before churn, after
 * churn without re-reordering, and after re-reordering.
 */

#include <iostream>

#include "algorithms/algorithms.hh"
#include "bench_common.hh"
#include "graph/dynamic.hh"
#include "graph/generators.hh"
#include "graph/reorder.hh"
#include "omega/omega_machine.hh"
#include "sim/baseline_machine.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

namespace {

struct StateResult
{
    Cycles base;
    Cycles omega;
};

StateResult
runState(const Graph &g, const DatasetSpec &spec)
{
    BaselineMachine base(machineFor(MachineKind::Baseline, spec));
    OmegaMachine om(machineFor(MachineKind::Omega, spec));
    StateResult r;
    r.base = runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &base);
    r.omega = runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &om);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchSession session("bench_ext_dynamic", argc, argv);
    printBanner(std::cout,
                "Extension (section IX): dynamic graphs (PageRank, "
                "wiki-like churn)");

    const DatasetSpec spec = *findDataset("wiki");
    Graph initial = reorderGraph(buildDataset(spec),
                                 ReorderKind::InDegreeSort);
    DynamicGraph dyn(initial);

    Table t({"state", "arcs", "top-20% prefix coverage",
             "baseline cycles", "omega cycles", "speedup"});
    auto add = [&](const char *state, const Graph &g,
                   std::uint64_t arcs) {
        const StateResult r = runState(g, spec);
        t.row()
            .cell(state)
            .cell(arcs)
            .cell(formatPercent(prefixInEdgeCoverage(g, 0.2)))
            .cell(r.base)
            .cell(r.omega)
            .cell(formatSpeedup(static_cast<double>(r.base) /
                                static_cast<double>(r.omega)));
    };
    add("initial (hot-first order)", initial, dyn.numArcs());

    // Churn: new activity concentrates on a NEW set of rising hubs drawn
    // from the formerly cold id range (preferential attachment to fresh
    // celebrities), plus random unfollows.
    Rng rng(99);
    const VertexId n = initial.numVertices();
    const std::size_t churn = initial.numArcs() / 3;
    for (std::size_t i = 0; i < churn; ++i) {
        const auto src = static_cast<VertexId>(rng.nextBounded(n));
        // Rising hubs: 64 ids in the middle of the cold range.
        const auto hub = static_cast<VertexId>(
            n / 2 + rng.nextBounded(64));
        dyn.addEdge(Edge{src, hub, 1});
    }
    for (std::size_t i = 0; i < churn / 4; ++i) {
        const auto v = static_cast<VertexId>(rng.nextBounded(n));
        const auto nbrs = initial.outNeighbors(v);
        if (!nbrs.empty())
            dyn.removeEdge(v, nbrs[rng.nextBounded(nbrs.size())]);
    }

    const Graph &stale = dyn.rebuild();
    add("after churn, stale order", stale, dyn.numArcs());

    const Graph &fresh = dyn.rebuildReordered();
    add("after re-reordering", fresh, dyn.numArcs());
    t.print(std::cout);

    std::cout << "\nThe linear-time nth-element pass restores the "
                 "hot-first coverage after churn (paper section IX). "
                 "Note the residual gap: re-reordering packs the risen "
                 "hubs into one chunk, concentrating their offloaded "
                 "atomics on a single PISC (see the chunk-map "
                 "ablation).\n";
    return 0;
}
