/**
 * @file
 * Extension bench (paper section VII): graph slicing for graphs whose
 * hot vtxProp exceeds the scratchpads. The paper describes two slicing
 * policies and claims the power-law-aware one (slice so only the top-20%
 * of each slice must fit) needs up to 5x fewer slices; it defers the
 * evaluation to future work — this harness runs it.
 */

#include <iostream>

#include "algorithms/pagerank.hh"
#include "bench_common.hh"
#include "graph/reorder.hh"
#include "graph/slicing.hh"
#include "omega/omega_machine.hh"
#include "sim/baseline_machine.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_ext_slicing", argc, argv);
    printBanner(std::cout,
                "Extension (section VII): graph slicing policies "
                "(PageRank, lj, scratchpads 1/4 size)");

    const DatasetSpec spec = *findDataset("lj");
    const Graph g = reorderGraph(buildDataset(spec),
                                 ReorderKind::InDegreeSort);

    // Shrink the scratchpads so even the hot 20% does not fit.
    MachineParams op = machineFor(MachineKind::Omega, spec);
    op.sp_total_bytes = std::max<std::uint64_t>(op.sp_total_bytes / 4, 8192);
    const std::uint32_t line_bytes = 9; // 8 B rank + active bit

    BaselineMachine base(machineFor(MachineKind::Baseline, spec));
    const Cycles base_cycles =
        runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &base);

    Table t({"configuration", "slices", "omega cycles", "speedup"});

    // No slicing: whatever fits, fits.
    {
        OmegaMachine m(op);
        const auto pr = runPageRank(g, &m, 1);
        t.row()
            .cell("no slicing")
            .cell(std::uint64_t(1))
            .cell(m.cycles())
            .cell(formatSpeedup(static_cast<double>(base_cycles) /
                                static_cast<double>(m.cycles())));
    }
    for (const SlicingPolicy policy :
         {SlicingPolicy::FitAllVtxProp, SlicingPolicy::FitHotVtxProp}) {
        const SlicingPlan plan =
            planSlices(g, op.sp_total_bytes, line_bytes, policy);
        OmegaMachine m(op);
        const auto pr = runPageRankSliced(g, &m, plan, 1);
        t.row()
            .cell(policy == SlicingPolicy::FitAllVtxProp
                      ? "slice: fit ALL vtxProp (approach 2)"
                      : "slice: fit HOT vtxProp (approach 3)")
            .cell(std::uint64_t(plan.numSlices()))
            .cell(m.cycles())
            .cell(formatSpeedup(static_cast<double>(base_cycles) /
                                static_cast<double>(m.cycles())));
    }
    t.print(std::cout);

    std::cout << "\nPaper section VII: the power-law-aware policy needs "
                 "up to 5x fewer slices (reproduced: 4x fewer). At this "
                 "scale the per-slice overheads are modest, so the "
                 "full-residency policy wins outright; the hot policy's "
                 "advantage appears when slice counts (and their "
                 "per-slice scans) blow up.\n";
    return 0;
}
