/**
 * @file
 * Fig 20 reproduction: performance on very large datasets (uk, twitter)
 * via the high-level model, validated against the detailed simulator.
 *
 * Methodology mirrors the paper's: cycle simulation is intractable for
 * the giants, so a spreadsheet-level model is fed measured LLC hit rates
 * and hot-set access coverage; the model is first validated on mid-size
 * graphs where the detailed simulation exists (paper: within 7%).
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"
#include "model/highlevel_model.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

namespace {

HighLevelInputs
measureInputs(const DatasetSpec &spec, AlgorithmKind algo)
{
    const Graph &g = datasetGraph(spec);
    HighLevelInputs in;
    in.vertices = g.numVertices();
    in.edges = g.numArcs();
    in.atomics_per_edge = algo == AlgorithmKind::BFS ? 0.3 : 1.0;
    in.vtxprop_accesses_per_edge = 1.0;
    in.ops_per_edge = 8.0;
    in.edge_bytes = 4.0;
    in.vertices_per_edge = static_cast<double>(g.numVertices()) /
                           static_cast<double>(g.numArcs());

    // Hot-set coverage from the cheap counting profiler, with the hot
    // boundary set to what the scaled scratchpads can actually hold.
    const MachineParams op = machineFor(MachineKind::Omega, spec);
    const std::uint32_t line =
        algo == AlgorithmKind::BFS ? 5u : 9u; // prop bytes + active bit
    const auto resident = static_cast<VertexId>(std::min<std::uint64_t>(
        op.sp_total_bytes / line, g.numVertices()));

    // Coverage of the top 20% from the cheap counting profiler (the
    // framework configures hot_boundary to the paper's 20% default).
    ProfileMachine profiler(machineFor(MachineKind::Baseline, spec));
    runAlgorithmOnMachine(algo, g, &profiler);
    const double cov20 = profiler.report().hotVertexAccessFraction();
    const double cap_frac = static_cast<double>(resident) /
                            static_cast<double>(g.numVertices());
    // Concentration: the first x of vertices carry roughly
    // cov20 * (x/0.2)^alpha of accesses with alpha ~ 0.45 on power law.
    in.sp_capacity_coverage = cap_frac;
    in.sp_access_coverage =
        cap_frac >= 0.2
            ? cov20
            : cov20 * std::pow(cap_frac / 0.2, 0.45);

    // Baseline LLC hit rate from a detailed PageRank-style pass is what
    // the paper measures with VTune; reuse the simulator's cache model.
    const RunOutcome base = runOn(spec, algo, MachineKind::Baseline);
    in.llc_hit_rate = base.stats.l2HitRate();
    return in;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchSession session("bench_fig20_large_graphs", argc, argv);
    printBanner(std::cout, "Fig 20: large datasets via the high-level "
                           "model (uk, twitter)");

    SweepRunner sweep;
    for (const auto &ds : {"sd", "rMat", "lj"}) {
        const DatasetSpec spec = *findDataset(ds);
        for (AlgorithmKind algo :
             {AlgorithmKind::PageRank, AlgorithmKind::BFS}) {
            sweep.add(spec, algo, MachineKind::Baseline);
            sweep.add(spec, algo, MachineKind::Omega);
        }
    }
    // measureInputs() also re-runs the baseline for uk/twitter.
    for (const auto &ds : {"uk", "twitter"}) {
        const DatasetSpec spec = *findDataset(ds);
        for (AlgorithmKind algo :
             {AlgorithmKind::PageRank, AlgorithmKind::BFS})
            sweep.add(spec, algo, MachineKind::Baseline);
    }
    sweep.run();

    // Validation on mid-size graphs first (the paper reports <=7% gap).
    std::cout << "Model validation against detailed simulation:\n";
    Table v({"workload", "detailed speedup", "model speedup", "error%"});
    for (const auto &ds : {"sd", "rMat", "lj"}) {
        const DatasetSpec spec = *findDataset(ds);
        for (AlgorithmKind algo :
             {AlgorithmKind::PageRank, AlgorithmKind::BFS}) {
            const RunOutcome base =
                runOn(spec, algo, MachineKind::Baseline);
            const RunOutcome om = runOn(spec, algo, MachineKind::Omega);
            const double detailed = static_cast<double>(base.cycles) /
                                    static_cast<double>(om.cycles);
            const HighLevelInputs in = measureInputs(spec, algo);
            const auto est = estimateLargeGraph(
                machineFor(MachineKind::Baseline, spec),
                machineFor(MachineKind::Omega, spec), in);
            v.row()
                .cell(algorithmName(algo) + "-" + ds)
                .cell(formatSpeedup(detailed))
                .cell(formatSpeedup(est.speedup))
                .cell(100.0 * std::abs(est.speedup - detailed) / detailed,
                      1);
        }
    }
    v.print(std::cout);

    std::cout << "\nLarge-graph estimates:\n";
    Table t({"workload", "sp coverage (capacity)", "access coverage",
             "model speedup"});
    for (const auto &ds : {"uk", "twitter"}) {
        const DatasetSpec spec = *findDataset(ds);
        for (AlgorithmKind algo :
             {AlgorithmKind::PageRank, AlgorithmKind::BFS}) {
            const HighLevelInputs in = measureInputs(spec, algo);
            const auto est = estimateLargeGraph(
                machineFor(MachineKind::Baseline, spec),
                machineFor(MachineKind::Omega, spec), in);
            t.row()
                .cell(algorithmName(algo) + "-" + ds)
                .cell(formatPercent(in.sp_capacity_coverage))
                .cell(formatPercent(in.sp_access_coverage))
                .cell(formatSpeedup(est.speedup));
        }
    }
    t.print(std::cout);

    std::cout << "\nPaper: twitter PageRank 1.68x with storage for only "
                 "5% of vtxProp (47% of accesses); BFS 1.35x at 10%.\n";
    return 0;
}
