/**
 * @file
 * Fig 15 reproduction: last-level storage hit rate for PageRank —
 * baseline shared L2 vs OMEGA's partitioned L2 + scratchpads.
 * Paper: 44% average baseline vs over 75% for OMEGA.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_fig15_llc_hitrate", argc, argv);
    printBanner(std::cout,
                "Fig 15: last-level storage hit rate (PageRank)");

    Table t({"dataset", "baseline LLC hit%", "omega L2+SP hit%"});
    std::vector<double> base_rates;
    std::vector<double> omega_rates;
    SweepRunner sweep;
    for (const auto &spec : powerLawDatasets()) {
        sweep.add(spec, AlgorithmKind::PageRank, MachineKind::Baseline);
        sweep.add(spec, AlgorithmKind::PageRank, MachineKind::Omega);
    }
    sweep.run();
    for (const auto &spec : powerLawDatasets()) {
        const RunOutcome base =
            runOn(spec, AlgorithmKind::PageRank, MachineKind::Baseline);
        const RunOutcome om =
            runOn(spec, AlgorithmKind::PageRank, MachineKind::Omega);
        base_rates.push_back(base.stats.lastLevelHitRate());
        omega_rates.push_back(om.stats.lastLevelHitRate());
        t.row()
            .cell(spec.name)
            .cell(100.0 * base.stats.lastLevelHitRate(), 1)
            .cell(100.0 * om.stats.lastLevelHitRate(), 1);
    }
    t.print(std::cout);

    double b = 0.0;
    double o = 0.0;
    for (double v : base_rates)
        b += v;
    for (double v : omega_rates)
        o += v;
    b /= static_cast<double>(base_rates.size());
    o /= static_cast<double>(omega_rates.size());
    std::cout << "\nAverages: baseline " << formatPercent(b) << " vs omega "
              << formatPercent(o)
              << "  (paper: 44% vs over 75%)\n";
    return 0;
}
