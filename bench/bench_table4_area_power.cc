/**
 * @file
 * Table IV reproduction: peak power and area for one CMP node slice,
 * baseline vs OMEGA.
 */

#include <iostream>

#include "bench_common.hh"
#include "model/area_power.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_table4_area_power", argc, argv);
    printBanner(std::cout,
                "Table IV: peak power and area per node (baseline vs "
                "OMEGA)");

    const NodeAreaPower base = nodeAreaPower(MachineParams::baseline());
    const NodeAreaPower om = nodeAreaPower(MachineParams::omega());

    Table t({"component", "baseline W", "baseline mm2", "omega W",
             "omega mm2"});
    auto add = [&](const char *name, const ComponentAP &b,
                   const ComponentAP &o) {
        t.row()
            .cell(name)
            .cell(b.power_w, 3)
            .cell(b.area_mm2, 2)
            .cell(o.power_w, 3)
            .cell(o.area_mm2, 2);
    };
    add("Core", base.core, om.core);
    add("L1 caches", base.l1, om.l1);
    add("Scratchpad", base.scratchpad, om.scratchpad);
    add("PISC", base.pisc, om.pisc);
    add("L2 cache", base.l2, om.l2);
    add("Node total", base.total(), om.total());
    t.print(std::cout);

    const double d_area = (om.total().area_mm2 - base.total().area_mm2) /
                          base.total().area_mm2;
    const double d_power = (om.total().power_w - base.total().power_w) /
                           base.total().power_w;
    std::cout << "\nOMEGA vs baseline: area " << formatPercent(d_area)
              << ", peak power " << formatPercent(d_power)
              << "  (paper: -2.31% area, +0.65% power)\n";
    return 0;
}
