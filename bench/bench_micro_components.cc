/**
 * @file
 * Component microbenchmarks (google-benchmark): raw throughput of the
 * simulator building blocks. These guard the simulation speed that makes
 * the figure sweeps tractable.
 */

#include <benchmark/benchmark.h>

#include "algorithms/algorithms.hh"
#include "framework/engine.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"
#include "graph/reorder.hh"
#include "omega/pisc.hh"
#include "omega/scratchpad_controller.hh"
#include "omega/source_vertex_buffer.hh"
#include "sim/baseline_machine.hh"
#include "sim/cache.hh"
#include "sim/coherence.hh"
#include "util/rng.hh"

namespace {

using namespace omega;

void
BM_CacheArrayAccess(benchmark::State &state)
{
    CacheArray cache(256 * 1024, 8, 64);
    Rng rng(1);
    std::vector<std::uint64_t> addrs(4096);
    for (auto &a : addrs)
        a = rng.nextBounded(1 << 22) * 64;
    std::size_t i = 0;
    for (auto _ : state) {
        auto r = cache.access(addrs[i++ & 4095]);
        r.line->state = LineState::Exclusive;
        benchmark::DoNotOptimize(r.hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayAccess);

void
BM_HierarchyAccessHit(benchmark::State &state)
{
    MachineParams p = MachineParams::baseline().scaledCapacities(1.0 / 32);
    CacheHierarchy h(p);
    h.access(0, 0x1000, false, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(h.access(0, 0x1000, false, 0));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccessHit);

void
BM_HierarchyAccessRandom(benchmark::State &state)
{
    MachineParams p = MachineParams::baseline().scaledCapacities(1.0 / 32);
    CacheHierarchy h(p);
    Rng rng(2);
    Cycles now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            h.access(static_cast<unsigned>(rng.nextBounded(16)),
                     rng.nextBounded(1 << 26), rng.nextBool(0.3), now));
        now += 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccessRandom);

void
BM_ControllerRoute(benchmark::State &state)
{
    ScratchpadController ctrl(16, 64);
    PropSpec spec;
    spec.start_addr = 0x2'0000'0000ull;
    spec.type_size = 8;
    spec.stride = 8;
    spec.count = 1 << 20;
    ctrl.configure({spec}, 1 << 18);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctrl.route(
            spec.start_addr + rng.nextBounded(1 << 20) * 8));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerRoute);

void
BM_PiscExecute(benchmark::State &state)
{
    Pisc pisc;
    pisc.loadMicrocode(1, 4);
    Cycles t = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(pisc.execute(t += 2));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PiscExecute);

void
BM_SvbLookup(benchmark::State &state)
{
    SourceVertexBuffer svb(16);
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(svb.lookupAndFill(
            static_cast<VertexId>(rng.nextBounded(64)), 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SvbLookup);

void
BM_RmatGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        Rng rng(5);
        auto edges = generateRmat(
            static_cast<unsigned>(state.range(0)), 8, rng);
        benchmark::DoNotOptimize(edges.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            (1ll << state.range(0)) * 8);
}
BENCHMARK(BM_RmatGeneration)->Arg(10)->Arg(14);

void
BM_CsrBuild(benchmark::State &state)
{
    Rng rng(6);
    auto edges = generateRmat(12, 8, rng);
    for (auto _ : state) {
        auto g = buildGraph(1 << 12, edges);
        benchmark::DoNotOptimize(g.numArcs());
    }
    state.SetItemsProcessed(state.iterations() * edges.size());
}
BENCHMARK(BM_CsrBuild);

void
BM_ReorderNthElement(benchmark::State &state)
{
    Rng rng(7);
    Graph g = buildGraph(1 << 14, generateRmat(14, 8, rng));
    for (auto _ : state) {
        auto perm =
            buildReorderPermutation(g, ReorderKind::InDegreeNthElement);
        benchmark::DoNotOptimize(perm.data());
    }
    state.SetItemsProcessed(state.iterations() * g.numVertices());
}
BENCHMARK(BM_ReorderNthElement);

void
BM_SimulatedPageRankIteration(benchmark::State &state)
{
    Rng rng(8);
    Graph g = reorderGraph(buildGraph(1 << 12, generateRmat(12, 8, rng)),
                           ReorderKind::InDegreeNthElement);
    for (auto _ : state) {
        BaselineMachine m(
            MachineParams::baseline().scaledCapacities(1.0 / 64));
        runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &m);
        benchmark::DoNotOptimize(m.cycles());
    }
    state.SetItemsProcessed(state.iterations() * g.numArcs());
}
BENCHMARK(BM_SimulatedPageRankIteration);

} // namespace
