/**
 * @file
 * Fig 3 reproduction: execution-cycle breakdown (TMAM-style).
 *
 * The paper profiles Ligra with VTune and finds graph workloads heavily
 * backend/memory bound (~71% memory on average). Here the baseline
 * machine's cycle accounting provides the same decomposition: useful
 * issue cycles vs memory stalls vs atomic stalls vs synchronization.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_fig3_tmam", argc, argv);
    printBanner(std::cout,
                "Fig 3: execution breakdown on the baseline CMP");

    const std::vector<std::string> datasets{"sd", "rMat", "lj"};
    const std::vector<AlgorithmKind> algos{
        AlgorithmKind::PageRank, AlgorithmKind::BFS, AlgorithmKind::SSSP,
        AlgorithmKind::Radii};

    Table t({"workload", "retiring%", "mem-bound%", "atomic%", "sync%"});
    std::vector<double> mem_fracs;
    SweepRunner sweep;
    for (const auto &ds : datasets) {
        const DatasetSpec spec = *findDataset(ds);
        for (AlgorithmKind algo : algos)
            sweep.add(spec, algo, MachineKind::Baseline);
    }
    sweep.run();
    for (const auto &ds : datasets) {
        const DatasetSpec spec = *findDataset(ds);
        for (AlgorithmKind algo : algos) {
            const RunOutcome r = runOn(spec, algo, MachineKind::Baseline);
            const double total = static_cast<double>(
                r.stats.compute_cycles + r.stats.mem_stall_cycles +
                r.stats.atomic_stall_cycles + r.stats.sync_stall_cycles);
            const double retiring = r.stats.compute_cycles / total;
            const double mem = r.stats.mem_stall_cycles / total;
            const double atomic = r.stats.atomic_stall_cycles / total;
            const double sync = r.stats.sync_stall_cycles / total;
            mem_fracs.push_back(mem + atomic);
            t.row()
                .cell(algorithmName(algo) + "-" + ds)
                .cell(100.0 * retiring, 1)
                .cell(100.0 * mem, 1)
                .cell(100.0 * atomic, 1)
                .cell(100.0 * sync, 1);
        }
    }
    t.print(std::cout);

    double avg = 0.0;
    for (double m : mem_fracs)
        avg += m;
    avg /= static_cast<double>(mem_fracs.size());
    std::cout << "\nAverage memory-bound fraction: "
              << formatPercent(avg)
              << "  (paper: 71% memory-bounded backend)\n";
    return 0;
}
