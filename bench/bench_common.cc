/**
 * @file
 * Bench helper implementations.
 */

#include "bench_common.hh"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>

#include "graph/reorder.hh"
#include "omega/omega_machine.hh"
#include "sim/baseline_machine.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/trace.hh"

namespace omega::bench {

std::string
machineKindName(MachineKind kind)
{
    switch (kind) {
      case MachineKind::Baseline: return "baseline";
      case MachineKind::Omega: return "omega";
      case MachineKind::OmegaSpOnly: return "omega-sp-only";
    }
    return "?";
}

const Graph &
datasetGraph(const DatasetSpec &spec)
{
    static std::map<std::string, Graph> cache;
    auto it = cache.find(spec.name);
    if (it == cache.end()) {
        Graph g = reorderGraph(buildDataset(spec),
                               ReorderKind::InDegreeNthElement);
        it = cache.emplace(spec.name, std::move(g)).first;
    }
    return it->second;
}

MachineParams
machineFor(MachineKind kind, const DatasetSpec &spec)
{
    MachineParams p;
    switch (kind) {
      case MachineKind::Baseline:
        p = MachineParams::baseline();
        break;
      case MachineKind::Omega:
        p = MachineParams::omega();
        break;
      case MachineKind::OmegaSpOnly:
        p = MachineParams::omegaScratchpadOnly();
        break;
    }
    return p.scaledCapacities(spec.capacity_scale);
}

RunOutcome
runOn(const DatasetSpec &spec, AlgorithmKind algo, MachineKind kind,
      const std::function<void(MachineParams &)> &tweak)
{
    const Graph &g = datasetGraph(spec);
    MachineParams params = machineFor(kind, spec);
    if (tweak)
        tweak(params);

    RunOutcome out;
    out.params = params;
    std::unique_ptr<MemorySystem> m;
    if (kind == MachineKind::Baseline)
        m = std::make_unique<BaselineMachine>(params);
    else
        m = std::make_unique<OmegaMachine>(params);

    BenchSession *session = BenchSession::active();
    const bool observe = session != nullptr && session->observing();
    IntervalRecorder recorder(observe ? session->intervalCycles() : 0);
    if (observe) {
        if (session->jsonEnabled())
            m->attachIntervalRecorder(&recorder);
        if (session->traceEnabled())
            m->attachTracing();
    }

    out.cycles = runAlgorithmOnMachine(algo, g, m.get());

    if (observe) {
        m->recordFinalSample();
        out.stats = m->report();
        session->recordRun(spec.name, algorithmName(algo),
                           machineKindName(kind), out, *m, recorder);
    } else {
        out.stats = m->report();
    }
    return out;
}

std::vector<DatasetSpec>
datasetsFor(AlgorithmKind algo, const std::vector<DatasetSpec> &from)
{
    const AlgorithmMeta &meta = algorithmMeta(algo);
    std::vector<DatasetSpec> out;
    for (const auto &s : from) {
        if (meta.needs_symmetric && s.directed)
            continue;
        out.push_back(s);
    }
    return out;
}

std::vector<DatasetSpec>
powerLawDatasets()
{
    std::vector<DatasetSpec> out;
    for (const auto &s : simulationDatasets()) {
        if (s.paper_power_law)
            out.push_back(s);
    }
    return out;
}

double
geoMean(const std::vector<double> &values)
{
    omega_assert(!values.empty(), "geoMean of empty set");
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

namespace {

BenchSession *g_active_session = nullptr;

void
writeParamsJson(JsonWriter &w, const MachineParams &p)
{
    w.beginObject();
    w.field("num_cores", p.num_cores);
    w.field("issue_width", p.issue_width);
    w.field("rob_size", p.rob_size);
    w.field("mshrs", p.mshrs);
    w.field("stream_prefetch", p.stream_prefetch);
    w.field("clock_ghz", p.clock_ghz);
    w.field("l1d_bytes", p.l1d.size_bytes);
    w.field("l2_bytes", p.l2.size_bytes);
    w.field("l2_latency", p.l2.latency);
    w.field("sp_total_bytes", p.sp_total_bytes);
    w.field("sp_latency", p.sp_latency);
    w.field("pisc_enabled", p.pisc_enabled);
    w.field("svb_entries", p.svb_entries);
    w.field("sp_chunk_size", p.sp_chunk_size);
    w.field("sp_word_granularity", p.sp_word_granularity);
    w.field("xbar_latency", p.xbar_latency);
    w.field("xbar_flit_bytes", p.xbar_flit_bytes);
    w.field("xbar_header_bytes", p.xbar_header_bytes);
    w.field("dram_channels", p.dram_channels);
    w.field("dram_gbs_per_channel", p.dram_gbs_per_channel);
    w.field("dram_latency", p.dram_latency);
    w.field("atomic_serialize", p.atomic_serialize);
    w.field("pisc_send_cycles", p.pisc_send_cycles);
    w.field("atomics_as_plain", p.atomics_as_plain);
    w.endObject();
}

void
writeDerivedJson(JsonWriter &w, const RunOutcome &out)
{
    const StatsReport &s = out.stats;
    w.beginObject();
    w.field("l1_hit_rate", s.l1HitRate());
    w.field("l2_hit_rate", s.l2HitRate());
    w.field("last_level_hit_rate", s.lastLevelHitRate());
    w.field("dram_bytes", s.dramBytes());
    w.field("dram_bandwidth_gbs", s.dramBandwidthGBs(out.params.clock_ghz));
    w.field("dram_bandwidth_utilization",
            s.dramBandwidthUtilization(out.params));
    w.field("memory_bound_fraction", s.memoryBoundFraction());
    w.field("hot_vertex_access_fraction", s.hotVertexAccessFraction());
    w.endObject();
}

} // namespace

BenchSession::BenchSession(std::string bench_name, int argc, char **argv)
    : bench_name_(std::move(bench_name))
{
    for (int i = 1; i < argc; ++i)
        args_.emplace_back(argv[i]);
    for (std::size_t i = 0; i < args_.size(); ++i) {
        const std::string &arg = args_[i];
        const bool has_operand = i + 1 < args_.size();
        if (arg == "--json") {
            omega_assert(has_operand, "--json requires a path operand");
            json_path_ = args_[++i];
        } else if (arg == "--trace") {
            omega_assert(has_operand, "--trace requires a path operand");
            trace_path_ = args_[++i];
        } else if (arg == "--interval") {
            omega_assert(has_operand,
                         "--interval requires a cycle-count operand");
            interval_cycles_ = std::strtoull(args_[++i].c_str(), nullptr, 10);
        }
        // Unrecognized arguments are left for the bench itself.
    }
    if (!trace_path_.empty()) {
        sink_ = std::make_unique<trace::TraceSink>();
        trace::setSink(sink_.get());
        if (!trace::compiledIn()) {
            warn("--trace requested but OMEGA_TRACE was compiled out; "
                 "the trace file will contain no events");
        }
    }
    prev_active_ = g_active_session;
    g_active_session = this;
}

BenchSession::~BenchSession()
{
    g_active_session = prev_active_;
    if (sink_ != nullptr && trace::sink() == sink_.get())
        trace::setSink(nullptr);
    if (jsonEnabled())
        writeJsonDoc();
    if (sink_ != nullptr)
        writeTraceFile();
}

BenchSession *
BenchSession::active()
{
    return g_active_session;
}

void
BenchSession::recordRun(const std::string &dataset,
                        const std::string &algorithm,
                        const std::string &machine,
                        const RunOutcome &outcome, const MemorySystem &mach,
                        const IntervalRecorder &intervals)
{
    if (!jsonEnabled())
        return;
    RunRecord rec;
    rec.dataset = dataset;
    rec.algorithm = algorithm;
    rec.machine = machine;
    rec.outcome = outcome;
    rec.intervals = intervals;
    if (const StatGroup *tree = mach.statTree()) {
        std::ostringstream os;
        JsonWriter w(os, /*pretty=*/false);
        tree->writeJson(w);
        omega_assert(w.complete(), "stat-tree JSON left unterminated");
        rec.stat_tree_json = os.str();
    }
    runs_.push_back(std::move(rec));
}

void
BenchSession::writeJsonDoc() const
{
    std::ofstream os(json_path_);
    if (!os) {
        warn("cannot open --json output path: ", json_path_);
        return;
    }
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.field("schema_version", kSchemaVersion);
    w.field("bench", bench_name_);
    w.key("args").beginArray();
    for (const std::string &a : args_)
        w.value(a);
    w.endArray();
    w.field("interval_cycles", interval_cycles_);
    if (sink_ != nullptr)
        w.field("trace_events", static_cast<std::uint64_t>(
                                    sink_->numEvents()));
    w.key("runs").beginArray();
    for (const RunRecord &rec : runs_) {
        w.beginObject();
        w.field("dataset", rec.dataset);
        w.field("algorithm", rec.algorithm);
        w.field("machine", rec.machine);
        w.field("cycles", rec.outcome.cycles);
        w.key("params");
        writeParamsJson(w, rec.outcome.params);
        w.key("stats");
        rec.outcome.stats.writeJson(w);
        w.key("derived");
        writeDerivedJson(w, rec.outcome);
        if (!rec.stat_tree_json.empty())
            w.key("stat_tree").rawValue(rec.stat_tree_json);
        w.key("intervals");
        rec.intervals.writeJson(w);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    omega_assert(w.complete(), "bench JSON document left unterminated");
    os << '\n';
}

void
BenchSession::writeTraceFile() const
{
    std::ofstream os(trace_path_);
    if (!os) {
        warn("cannot open --trace output path: ", trace_path_);
        return;
    }
    sink_->writeChromeTrace(os);
    os << '\n';
}

} // namespace omega::bench
