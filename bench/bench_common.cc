/**
 * @file
 * Bench helper implementations.
 */

#include "bench_common.hh"

#include <cmath>
#include <functional>

#include "graph/reorder.hh"
#include "omega/omega_machine.hh"
#include "sim/baseline_machine.hh"
#include "util/logging.hh"

namespace omega::bench {

std::string
machineKindName(MachineKind kind)
{
    switch (kind) {
      case MachineKind::Baseline: return "baseline";
      case MachineKind::Omega: return "omega";
      case MachineKind::OmegaSpOnly: return "omega-sp-only";
    }
    return "?";
}

const Graph &
datasetGraph(const DatasetSpec &spec)
{
    static std::map<std::string, Graph> cache;
    auto it = cache.find(spec.name);
    if (it == cache.end()) {
        Graph g = reorderGraph(buildDataset(spec),
                               ReorderKind::InDegreeNthElement);
        it = cache.emplace(spec.name, std::move(g)).first;
    }
    return it->second;
}

MachineParams
machineFor(MachineKind kind, const DatasetSpec &spec)
{
    MachineParams p;
    switch (kind) {
      case MachineKind::Baseline:
        p = MachineParams::baseline();
        break;
      case MachineKind::Omega:
        p = MachineParams::omega();
        break;
      case MachineKind::OmegaSpOnly:
        p = MachineParams::omegaScratchpadOnly();
        break;
    }
    return p.scaledCapacities(spec.capacity_scale);
}

RunOutcome
runOn(const DatasetSpec &spec, AlgorithmKind algo, MachineKind kind,
      const std::function<void(MachineParams &)> &tweak)
{
    const Graph &g = datasetGraph(spec);
    MachineParams params = machineFor(kind, spec);
    if (tweak)
        tweak(params);

    RunOutcome out;
    out.params = params;
    if (kind == MachineKind::Baseline) {
        BaselineMachine m(params);
        out.cycles = runAlgorithmOnMachine(algo, g, &m);
        out.stats = m.report();
    } else {
        OmegaMachine m(params);
        out.cycles = runAlgorithmOnMachine(algo, g, &m);
        out.stats = m.report();
    }
    return out;
}

std::vector<DatasetSpec>
datasetsFor(AlgorithmKind algo, const std::vector<DatasetSpec> &from)
{
    const AlgorithmMeta &meta = algorithmMeta(algo);
    std::vector<DatasetSpec> out;
    for (const auto &s : from) {
        if (meta.needs_symmetric && s.directed)
            continue;
        out.push_back(s);
    }
    return out;
}

std::vector<DatasetSpec>
powerLawDatasets()
{
    std::vector<DatasetSpec> out;
    for (const auto &s : simulationDatasets()) {
        if (s.paper_power_law)
            out.push_back(s);
    }
    return out;
}

double
geoMean(const std::vector<double> &values)
{
    omega_assert(!values.empty(), "geoMean of empty set");
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace omega::bench
