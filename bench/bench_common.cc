/**
 * @file
 * Bench helper implementations.
 */

#include "bench_common.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>

#include "graph/reorder.hh"
#include "sim/machine_registry.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"
#include "util/trace.hh"

namespace omega::bench {

namespace {

/** Registry entry backing a MachineKind (the only mapping point). */
const MachineRegistryEntry &
registryEntryFor(MachineKind kind)
{
    switch (kind) {
      case MachineKind::Baseline: return machineEntry("baseline");
      case MachineKind::Grasp: return machineEntry("grasp");
      case MachineKind::Omega: return machineEntry("omega");
      case MachineKind::OmegaSpOnly: return machineEntry("omega-sp-only");
    }
    panic("unknown machine kind");
}

} // namespace

std::string
machineKindName(MachineKind kind)
{
    return registryEntryFor(kind).name;
}

std::vector<MachineKind>
allMachineKinds()
{
    return {MachineKind::Baseline, MachineKind::Grasp, MachineKind::Omega,
            MachineKind::OmegaSpOnly};
}

std::vector<MachineKind>
paperMachineKinds()
{
    return {MachineKind::Baseline, MachineKind::Omega};
}

const Graph &
datasetGraph(const DatasetSpec &spec)
{
    // Guarded so SweepRunner workers can share the cache; references stay
    // valid because entries are never erased. SweepRunner materializes
    // every planned graph before spawning workers, so in practice workers
    // only take the fast lookup path.
    static std::mutex mutex;
    static std::map<std::string, Graph> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(spec.name);
    if (it == cache.end()) {
        Graph g = reorderGraph(buildDataset(spec),
                               ReorderKind::InDegreeNthElement);
        it = cache.emplace(spec.name, std::move(g)).first;
    }
    return it->second;
}

MachineParams
machineFor(MachineKind kind, const DatasetSpec &spec)
{
    return registryEntryFor(kind).make_params().scaledCapacities(
        spec.capacity_scale);
}

namespace {

BenchSession *g_active_session = nullptr;

/** Bad command line: print the message + usage to stderr and exit(2). */
[[noreturn]] void
usageError(const std::string &bench, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", bench.c_str(), msg.c_str());
    std::fprintf(stderr,
                 "usage: %s [--json <path>] [--trace <path>]"
                 " [--interval <cycles>] [--jobs <n>]"
                 " [--sim-threads <n>]"
                 " [--faults <key=value,...>] [--profile <path>]"
                 " [--checkpoint <path>] [--checkpoint-every <n>]"
                 " [--resume <path>]"
                 " [bench args...]\n",
                 bench.c_str());
    std::exit(2);
}

/** SIGINT/SIGTERM: latch for the coordinator (async-signal-safe). */
void
checkpointSignalHandler(int sig)
{
    requestCheckpointInterrupt(sig);
}

/**
 * Parse a non-negative integer flag operand. Rejects signs (a negative
 * count must not wrap to a huge unsigned value), garbage and overflow.
 */
bool
parseCount(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty() || !std::isdigit(static_cast<unsigned char>(tok[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (errno == ERANGE || end == nullptr || *end != '\0')
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

void
writeParamsJson(JsonWriter &w, const MachineParams &p)
{
    w.beginObject();
    w.field("num_cores", p.num_cores);
    w.field("issue_width", p.issue_width);
    w.field("rob_size", p.rob_size);
    w.field("mshrs", p.mshrs);
    w.field("stream_prefetch", p.stream_prefetch);
    w.field("clock_ghz", p.clock_ghz);
    w.field("l1d_bytes", p.l1d.size_bytes);
    w.field("l2_bytes", p.l2.size_bytes);
    w.field("l2_latency", p.l2.latency);
    w.field("sp_total_bytes", p.sp_total_bytes);
    w.field("sp_latency", p.sp_latency);
    w.field("pisc_enabled", p.pisc_enabled);
    w.field("svb_entries", p.svb_entries);
    w.field("sp_chunk_size", p.sp_chunk_size);
    w.field("sp_word_granularity", p.sp_word_granularity);
    w.field("xbar_latency", p.xbar_latency);
    w.field("xbar_flit_bytes", p.xbar_flit_bytes);
    w.field("xbar_header_bytes", p.xbar_header_bytes);
    w.field("dram_channels", p.dram_channels);
    w.field("dram_gbs_per_channel", p.dram_gbs_per_channel);
    w.field("dram_latency", p.dram_latency);
    w.field("atomic_serialize", p.atomic_serialize);
    w.field("pisc_send_cycles", p.pisc_send_cycles);
    w.field("atomics_as_plain", p.atomics_as_plain);
    w.endObject();
}

void
writeDerivedJson(JsonWriter &w, const RunOutcome &out)
{
    const StatsReport &s = out.stats;
    w.beginObject();
    w.field("l1_hit_rate", s.l1HitRate());
    w.field("l2_hit_rate", s.l2HitRate());
    w.field("last_level_hit_rate", s.lastLevelHitRate());
    w.field("dram_bytes", s.dramBytes());
    w.field("dram_bandwidth_gbs", s.dramBandwidthGBs(out.params.clock_ghz));
    w.field("dram_bandwidth_utilization",
            s.dramBandwidthUtilization(out.params));
    w.field("memory_bound_fraction", s.memoryBoundFraction());
    w.field("hot_vertex_access_fraction", s.hotVertexAccessFraction());
    w.endObject();
}

/**
 * Full identity of a run: everything the simulation outcome depends on.
 * Post-tweak parameters are serialized so two tweaks producing the same
 * MachineParams share one memoized execution.
 */
std::string
runKey(const DatasetSpec &spec, AlgorithmKind algo, MachineKind kind,
       const MachineParams &params)
{
    std::ostringstream os;
    os << spec.name << '|' << algorithmName(algo) << '|'
       << machineKindName(kind) << '|';
    JsonWriter w(os, /*pretty=*/false);
    writeParamsJson(w, params);
    return os.str();
}

void
saveReplay(SnapshotWriter &w, const ScriptReplayStats &rs)
{
    // blocking_waits is wall-clock-dependent and never serialized.
    w.putU64(rs.epochs);
    w.putU64(rs.merged_items);
    w.putU64(rs.merged_ops);
    w.putU64(rs.max_queue_depth);
    w.putU64(rs.concurrent_hook_items);
}

ScriptReplayStats
restoreReplay(SnapshotReader &r)
{
    ScriptReplayStats rs;
    rs.epochs = r.getU64();
    rs.merged_items = r.getU64();
    rs.merged_ops = r.getU64();
    rs.max_queue_depth = r.getU64();
    rs.concurrent_hook_items = r.getU64();
    rs.blocking_waits = 0;
    return rs;
}

/**
 * Journal record of one completed run: the run key plus everything
 * recordCompleted() consumes. MachineParams are NOT serialized — the
 * key embeds their full JSON, so the reader recomputes identical
 * parameters before decoding. Trace sinks and profiles never appear
 * (those flags cannot be combined with checkpointing).
 */
void
encodeJournaledRun(SnapshotWriter &w, const std::string &key,
                   const CompletedRun &run)
{
    w.putString(key);
    w.putU64(run.outcome.cycles);
    run.outcome.stats.save(w);
    saveReplay(w, run.outcome.replay);
    w.putString(run.stat_tree_json);
    w.putString(run.fault_json);
    run.intervals.save(w);
}

/** Decode a journal record (reader positioned after the key). */
CompletedRun
decodeJournaledRun(SnapshotReader &r, const MachineParams &params,
                   Cycles interval_cycles)
{
    CompletedRun run;
    run.outcome.params = params;
    run.outcome.cycles = r.getU64();
    run.outcome.stats.restore(r);
    run.outcome.replay = restoreReplay(r);
    run.stat_tree_json = r.getString();
    run.fault_json = r.getString();
    run.intervals = IntervalRecorder(interval_cycles);
    run.intervals.restore(r);
    if (r.remaining() != 0) {
        throw SnapshotStateError(
            "journal: " + std::to_string(r.remaining()) +
            " unconsumed bytes after a run record");
    }
    return run;
}

/**
 * Build the machine and run the algorithm, capturing every observability
 * artifact into the returned value. Thread-safe: all state is per-run,
 * and the trace sink is installed thread-locally for the duration.
 *
 * @param key the run's full identity (runKey()); required with @p coord.
 * @param coord per-run checkpoint coordinator, or nullptr. Only the
 *        session thread passes one — SweepRunner workers recover
 *        through the journal instead, so the coordinator's section
 *        registry is never shared across threads.
 */
CompletedRun
executeRun(const DatasetSpec &spec, AlgorithmKind algo, MachineKind kind,
           const std::function<void(MachineParams &)> &tweak, bool want_json,
           bool want_trace, Cycles interval_cycles,
           const FaultPlan *faults, bool want_profile,
           unsigned sim_threads, const std::string &key = {},
           CheckpointCoordinator *coord = nullptr)
{
    const Graph &g = datasetGraph(spec);
    MachineParams params = machineFor(kind, spec);
    if (tweak)
        tweak(params);

    CompletedRun run;
    run.outcome.params = params;
    std::unique_ptr<MemorySystem> m = registryEntryFor(kind).make(params);
    if (faults != nullptr)
        m->armFaults(*faults);
    if (want_profile)
        m->armProfile();

    std::optional<trace::ScopedSink> scoped;
    if (want_trace) {
        run.trace_sink = std::make_unique<trace::TraceSink>();
        scoped.emplace(run.trace_sink.get());
        m->attachTracing();
    }
    IntervalRecorder recorder(want_json ? interval_cycles : 0);
    if (want_json)
        m->attachIntervalRecorder(&recorder);

    if (coord != nullptr) {
        // Section registration order IS the serialization order:
        // intervals first (here), then engine + machine (Engine ctor),
        // then the algorithm's own functional state. The algorithm arms
        // the coordinator with maybeRestore() once everything is
        // registered.
        coord->beginRun(key);
        coord->registerSection(
            "intervals",
            [&recorder](SnapshotWriter &w) { recorder.save(w); },
            [&recorder](SnapshotReader &r) { recorder.restore(r); });
    }

    EngineOptions opts;
    opts.sim_threads = sim_threads;
    opts.checkpoint = coord;
    try {
        run.outcome.cycles = runAlgorithmOnMachine(algo, g, m.get(), opts);
    } catch (const WatchdogError &e) {
        // The machine dies with this scope, so the post-mortem artifacts
        // must be composed here: merge the run's buffered trace events
        // into the session sink (they were silently dropped before), and
        // flush a non-resumable stuck-state snapshot whose path rides in
        // the error report.
        if (run.trace_sink != nullptr) {
            if (BenchSession *s = BenchSession::active())
                s->mergeAbortTrace(*run.trace_sink);
        }
        std::string report = e.what();
        if (coord != nullptr && coord->savingEnabled()) {
            const std::string pm_path = coord->savePath() + ".postmortem";
            try {
                SnapshotWriter w;
                w.putString(key);
                w.putU64(0); // iteration unknown mid-phase
                w.putBool(false); // a state dump, never resumable
                w.putU64(1);
                w.putString("machine");
                const std::size_t blob = w.beginBlob();
                m->saveState(w);
                w.endBlob(blob);
                writeSnapshotFile(pm_path, w.bytes());
                report += "\npost-mortem snapshot: " + pm_path;
            } catch (const std::exception &pm) {
                report += std::string("\npost-mortem snapshot failed: ") +
                          pm.what();
            }
        }
        throw WatchdogError(report);
    } catch (...) {
        // CheckpointInterrupt (and anything else) also loses its
        // buffered trace without this merge.
        if (run.trace_sink != nullptr) {
            if (BenchSession *s = BenchSession::active())
                s->mergeAbortTrace(*run.trace_sink);
        }
        throw;
    }

    if (want_json || want_trace)
        m->recordFinalSample();
    if (want_profile) {
        if (AccessProfiler *prof = m->profiler()) {
            // Flush the trailing partial phase before anything renders
            // the stat tree or the profile document.
            prof->finishRun(m->cycles());
        }
    }
    run.outcome.stats = m->report();
    run.outcome.replay = m->replayStats();
    if (std::getenv("OMEGA_PARALLEL_STATS") != nullptr) {
        // Diagnostic only (stderr): includes blocking_waits, which is
        // wall-clock-dependent and therefore banned from every
        // byte-compared document.
        const ScriptReplayStats &rs = run.outcome.replay;
        std::fprintf(stderr,
                     "[sim-parallel] %s/%s: epochs=%llu items=%llu "
                     "ops=%llu max_depth=%llu hook_items=%llu "
                     "blocking_waits=%llu\n",
                     spec.name.c_str(), machineKindName(kind).c_str(),
                     static_cast<unsigned long long>(rs.epochs),
                     static_cast<unsigned long long>(rs.merged_items),
                     static_cast<unsigned long long>(rs.merged_ops),
                     static_cast<unsigned long long>(rs.max_queue_depth),
                     static_cast<unsigned long long>(
                         rs.concurrent_hook_items),
                     static_cast<unsigned long long>(rs.blocking_waits));
    }
    if (want_json) {
        if (const StatGroup *tree = m->statTree()) {
            std::ostringstream os;
            JsonWriter w(os, /*pretty=*/false);
            tree->writeJson(w);
            omega_assert(w.complete(), "stat-tree JSON left unterminated");
            run.stat_tree_json = os.str();
        }
        if (const FaultInjector *inj = m->faultInjector()) {
            std::ostringstream os;
            JsonWriter w(os, /*pretty=*/false);
            inj->writeJson(w);
            omega_assert(w.complete(), "fault JSON left unterminated");
            run.fault_json = os.str();
        }
    }
    if (want_profile) {
        if (AccessProfiler *prof = m->profiler()) {
            std::ostringstream os;
            JsonWriter w(os, /*pretty=*/false);
            prof->writeJson(w);
            omega_assert(w.complete(), "profile JSON left unterminated");
            run.profile_json = os.str();
            run.outcome.profile = prof->summary();
        }
    }
    run.intervals = recorder;
    return run;
}

} // namespace

RunOutcome
runOn(const DatasetSpec &spec, AlgorithmKind algo, MachineKind kind,
      const std::function<void(MachineParams &)> &tweak)
{
    BenchSession *session = BenchSession::active();
    const bool observe = session != nullptr && session->observing();

    std::string key;
    if (session != nullptr) {
        MachineParams params = machineFor(kind, spec);
        if (tweak)
            tweak(params);
        key = runKey(spec, algo, kind, params);
        const CompletedRun *pre = session->findPrewarmed(key);
        if (pre != nullptr) {
            session->coordinator().dropResumeFor(key);
            if (observe)
                session->recordCompleted(spec.name, algorithmName(algo),
                                         machineKindName(kind), *pre);
            return pre->outcome;
        }
        if (session->checkpointing()) {
            // Sweep journal: a run the interrupted session completed is
            // decoded instead of re-simulated, byte-identical to its
            // original recording.
            std::vector<std::uint8_t> rec = session->takeJournaled(key);
            if (!rec.empty()) {
                try {
                    SnapshotReader r(std::move(rec));
                    (void)r.getString(); // the key this record maps to
                    CompletedRun run = decodeJournaledRun(
                        r, params,
                        session->jsonEnabled() ? session->intervalCycles()
                                               : 0);
                    session->coordinator().dropResumeFor(key);
                    const RunOutcome outcome = run.outcome;
                    if (observe) {
                        session->recordCompleted(spec.name,
                                                 algorithmName(algo),
                                                 machineKindName(kind),
                                                 run);
                    }
                    session->storePrewarmed(key, std::move(run));
                    return outcome;
                } catch (const SnapshotError &e) {
                    warn("journal record for '", key,
                         "' rejected (re-running): ", e.what());
                }
            }
        }
    }

    const bool want_json = observe && session->jsonEnabled();
    const bool want_trace = observe && session->traceEnabled();
    const bool want_profile = observe && session->profileEnabled();
    // Per-run checkpointing runs only on the session thread; a latched
    // signal between runs (or during an algorithm with no checkpoint
    // wiring) stops the sweep here, before more work starts.
    CheckpointCoordinator *coord =
        session != nullptr && session->checkpointing()
            ? &session->coordinator()
            : nullptr;
    if (coord != nullptr && pendingCheckpointSignal() != 0) {
        const CheckpointInterrupt e({}, 0, pendingCheckpointSignal());
        session->noteInterrupted(e);
        if (session->rethrowInterrupt())
            throw e;
        std::exit(128 + e.signal());
    }
    CompletedRun run;
    try {
        run = executeRun(spec, algo, kind, tweak, want_json, want_trace,
                         observe ? session->intervalCycles() : 0,
                         session != nullptr ? session->faultPlan()
                                            : nullptr,
                         want_profile,
                         session != nullptr ? session->simThreads() : 1,
                         key, coord);
    } catch (const WatchdogError &e) {
        if (session != nullptr)
            session->abortSession(e.what()); // flushes partial JSON, exits
        throw;
    } catch (const CheckpointInterrupt &e) {
        // coord was non-null, so session is too. The final checkpoint is
        // already on disk; flush the partial document and stop.
        session->noteInterrupted(e);
        if (session->rethrowInterrupt())
            throw;
        std::exit(e.signal() > 0 ? 128 + e.signal() : 130);
    }
    if (session != nullptr && session->checkpointing())
        session->journalCompleted(key, run);
    if (observe)
        session->recordCompleted(spec.name, algorithmName(algo),
                                 machineKindName(kind), run);
    return run.outcome;
}

std::vector<DatasetSpec>
datasetsFor(AlgorithmKind algo, const std::vector<DatasetSpec> &from)
{
    const AlgorithmMeta &meta = algorithmMeta(algo);
    std::vector<DatasetSpec> out;
    for (const auto &s : from) {
        if (meta.needs_symmetric && s.directed)
            continue;
        out.push_back(s);
    }
    return out;
}

std::vector<DatasetSpec>
powerLawDatasets()
{
    std::vector<DatasetSpec> out;
    for (const auto &s : simulationDatasets()) {
        if (s.paper_power_law)
            out.push_back(s);
    }
    return out;
}

double
geoMean(const std::vector<double> &values)
{
    omega_assert(!values.empty(), "geoMean of empty set");
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

BenchSession::BenchSession(std::string bench_name, int argc, char **argv)
    : bench_name_(std::move(bench_name))
{
    std::vector<std::string> raw;
    for (int i = 1; i < argc; ++i)
        raw.emplace_back(argv[i]);
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const std::string &arg = raw[i];
        auto operand = [&](const char *flag) -> const std::string & {
            if (i + 1 >= raw.size()) {
                usageError(bench_name_,
                           std::string(flag) + " requires an operand");
            }
            return raw[++i];
        };
        if (arg == "--json") {
            json_path_ = operand("--json");
        } else if (arg == "--trace") {
            trace_path_ = operand("--trace");
        } else if (arg == "--interval") {
            const std::string &tok = operand("--interval");
            std::uint64_t cycles = 0;
            if (!parseCount(tok, cycles)) {
                usageError(bench_name_, "--interval operand '" + tok +
                                            "' is not a non-negative "
                                            "cycle count");
            }
            interval_cycles_ = cycles;
        } else if (arg == "--jobs") {
            const std::string &tok = operand("--jobs");
            std::uint64_t jobs = 0;
            if (!parseCount(tok, jobs) || jobs < 1 ||
                jobs > std::numeric_limits<unsigned>::max()) {
                usageError(bench_name_, "--jobs operand '" + tok +
                                            "' is not a thread count "
                                            ">= 1");
            }
            jobs_ = static_cast<unsigned>(jobs);
        } else if (arg == "--sim-threads") {
            const std::string &tok = operand("--sim-threads");
            std::uint64_t threads = 0;
            if (!parseCount(tok, threads) || threads < 1 ||
                threads > std::numeric_limits<unsigned>::max()) {
                usageError(bench_name_, "--sim-threads operand '" + tok +
                                            "' is not a thread count "
                                            ">= 1");
            }
            // Warning-clamp (not an error): results are bit-identical
            // for every value, so an oversubscribed count could only
            // time-slice workers for pure overhead. --jobs is NOT
            // clamped — whole-run workers block on I/O and can
            // reasonably oversubscribe.
            const unsigned hw = ThreadPool::hardwareJobs();
            if (threads > hw) {
                warn("--sim-threads ", threads,
                     " exceeds hardware concurrency (", hw,
                     "); clamping");
                threads = hw;
            }
            sim_threads_ = static_cast<unsigned>(threads);
            sim_threads_given_ = true;
        } else if (arg == "--faults") {
            const std::string &tok = operand("--faults");
            std::string error;
            faults_ = FaultPlan::parse(tok, &error);
            if (!faults_.has_value()) {
                usageError(bench_name_,
                           "--faults spec '" + tok + "': " + error);
            }
        } else if (arg == "--profile") {
            profile_path_ = operand("--profile");
            // Fail fast on an unwritable destination: the document is
            // only written at session end, after a potentially long
            // sweep. Append mode probes without truncating.
            std::ofstream probe(profile_path_, std::ios::app);
            if (!probe) {
                usageError(bench_name_, "--profile path '" + profile_path_ +
                                            "' is not writable");
            }
        } else if (arg == "--checkpoint") {
            checkpoint_path_ = operand("--checkpoint");
            // Fail fast on an unwritable destination. Snapshots land at
            // "<path>.tmp" before the atomic rename, so probe that name
            // and clean it up (a stale tmp from a crash is dead weight).
            const std::string tmp = checkpoint_path_ + ".tmp";
            {
                std::ofstream probe(tmp, std::ios::app);
                if (!probe) {
                    usageError(bench_name_, "--checkpoint path '" +
                                                checkpoint_path_ +
                                                "' is not writable");
                }
            }
            std::remove(tmp.c_str());
        } else if (arg == "--checkpoint-every") {
            const std::string &tok = operand("--checkpoint-every");
            std::uint64_t every = 0;
            if (!parseCount(tok, every) || every < 1) {
                usageError(bench_name_, "--checkpoint-every operand '" +
                                            tok +
                                            "' is not an iteration count "
                                            ">= 1");
            }
            checkpoint_every_ = every;
        } else if (arg == "--resume") {
            resume_path_ = operand("--resume");
        } else if (!arg.empty() && arg[0] == '-') {
            usageError(bench_name_, "unknown flag '" + arg + "'");
        } else {
            // Left for the bench itself. Only these survive into the
            // JSON document, so the document does not depend on output
            // paths or job count.
            args_.push_back(arg);
        }
    }
    if (!trace_path_.empty()) {
        // The sink is a merge target only: runs record into their own
        // thread-local sinks and recordCompleted() folds them in here in
        // consumption order.
        sink_ = std::make_unique<trace::TraceSink>();
        if (!trace::compiledIn()) {
            warn("--trace requested but OMEGA_TRACE was compiled out; "
                 "the trace file will contain no events");
        }
    }
    if (!profile_path_.empty() && !profile::compiledIn()) {
        warn("--profile requested but OMEGA_PROFILE was compiled out; "
             "every profile in the document will be unarmed/all-zero");
    }
    if (checkpoint_every_ != 0 && checkpoint_path_.empty())
        usageError(bench_name_, "--checkpoint-every requires --checkpoint");
    if (checkpointing() &&
        (!trace_path_.empty() || !profile_path_.empty())) {
        usageError(bench_name_,
                   "--checkpoint/--resume cannot be combined with --trace "
                   "or --profile");
    }
    if (!resume_path_.empty()) {
        // A missing operand file is a usage error (exit 2), like any
        // other bad operand; a file that exists but fails verification
        // keeps its distinct snapshot-taxonomy message.
        {
            std::ifstream probe(resume_path_, std::ios::binary);
            if (!probe) {
                usageError(bench_name_, "--resume file '" + resume_path_ +
                                            "' cannot be opened");
            }
        }
        try {
            coordinator_.setResumePayload(readSnapshotFile(resume_path_));
        } catch (const SnapshotError &e) {
            std::fprintf(stderr, "%s: --resume %s: %s\n",
                         bench_name_.c_str(), resume_path_.c_str(),
                         e.what());
            std::exit(1);
        }
    }
    if (checkpointing()) {
        clearCheckpointSignal();
        coordinator_.configureSave(checkpoint_path_, checkpoint_every_);
        if (!checkpoint_path_.empty()) {
            if (!resume_path_.empty()) {
                // Journaled runs of the interrupted session will be
                // served without re-simulation; the snapshot resumes the
                // one run that was mid-flight.
                auto records = readJournalRecords(journalPath());
                for (auto &rec : records) {
                    SnapshotReader r(rec); // copy: only the key is read
                    journal_.insert_or_assign(r.getString(),
                                              std::move(rec));
                }
            } else {
                // A fresh checkpointed session: records from a previous
                // sweep at the same path must not leak in.
                std::remove(journalPath().c_str());
            }
            std::signal(SIGINT, &checkpointSignalHandler);
            std::signal(SIGTERM, &checkpointSignalHandler);
            signal_handlers_installed_ = true;
        }
    }
    prev_active_ = g_active_session;
    g_active_session = this;
}

BenchSession::~BenchSession()
{
    g_active_session = prev_active_;
    if (signal_handlers_installed_) {
        std::signal(SIGINT, SIG_DFL);
        std::signal(SIGTERM, SIG_DFL);
    }
    if (coordinator_.resumePending()) {
        warn("--resume snapshot for run '", coordinator_.resumeRunKey(),
             "' was never consumed by this bench");
    }
    if (jsonEnabled())
        writeJsonDoc();
    if (sink_ != nullptr)
        writeTraceFile();
    if (profileEnabled())
        writeProfileDoc();
}

BenchSession *
BenchSession::active()
{
    return g_active_session;
}

void
BenchSession::abortSession(const std::string &reason)
{
    aborted_ = true;
    abort_reason_ = reason;
    warn("bench aborted: ", reason);
    // Flush everything collected so far; a partial document beats losing
    // the whole sweep. std::exit() skips the destructor, so write here.
    if (jsonEnabled())
        writeJsonDoc();
    if (sink_ != nullptr)
        writeTraceFile();
    if (profileEnabled())
        writeProfileDoc();
    std::exit(1);
}

void
BenchSession::noteInterrupted(const CheckpointInterrupt &e)
{
    interrupted_ = true;
    interrupted_iteration_ = e.iteration();
    interrupted_checkpoint_ = e.path();
    interrupted_signal_ = e.signal();
    if (e.path().empty()) {
        warn("bench interrupted before the in-flight run reached a "
             "checkpointable boundary");
    } else {
        warn("bench interrupted at iteration ", e.iteration(),
             "; checkpoint written to ", e.path());
    }
    // Flush partial documents now: std::exit() (and a test rethrow that
    // unwinds past the session) must not lose what was collected.
    if (jsonEnabled())
        writeJsonDoc();
    if (sink_ != nullptr)
        writeTraceFile();
    if (profileEnabled())
        writeProfileDoc();
}

void
BenchSession::mergeAbortTrace(const trace::TraceSink &sink)
{
    std::lock_guard<std::mutex> lock(abort_trace_mutex_);
    if (sink_ != nullptr)
        sink_->mergeFrom(sink);
}

void
BenchSession::journalCompleted(const std::string &key,
                               const CompletedRun &run)
{
    if (checkpoint_path_.empty())
        return;
    SnapshotWriter w;
    encodeJournaledRun(w, key, run);
    std::lock_guard<std::mutex> lock(journal_mutex_);
    try {
        appendJournalRecord(journalPath(), w.bytes());
    } catch (const SnapshotError &e) {
        warn("cannot append to checkpoint journal: ", e.what());
    }
}

std::vector<std::uint8_t>
BenchSession::takeJournaled(const std::string &key)
{
    std::lock_guard<std::mutex> lock(journal_mutex_);
    auto it = journal_.find(key);
    if (it == journal_.end())
        return {};
    std::vector<std::uint8_t> rec = std::move(it->second);
    journal_.erase(it);
    return rec;
}

bool
BenchSession::hasJournaled(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(journal_mutex_);
    return journal_.count(key) != 0;
}

void
BenchSession::recordCompleted(const std::string &dataset,
                              const std::string &algorithm,
                              const std::string &machine,
                              const CompletedRun &run)
{
    if (sink_ != nullptr && run.trace_sink != nullptr)
        sink_->mergeFrom(*run.trace_sink);
    if (!jsonEnabled() && !profileEnabled())
        return;
    RunRecord rec;
    rec.dataset = dataset;
    rec.algorithm = algorithm;
    rec.machine = machine;
    rec.outcome = run.outcome;
    rec.stat_tree_json = run.stat_tree_json;
    rec.intervals = run.intervals;
    rec.fault_json = run.fault_json;
    rec.profile_json = run.profile_json;
    runs_.push_back(std::move(rec));
}

void
BenchSession::storePrewarmed(std::string key, CompletedRun run)
{
    prewarmed_.insert_or_assign(std::move(key), std::move(run));
}

const CompletedRun *
BenchSession::findPrewarmed(const std::string &key) const
{
    auto it = prewarmed_.find(key);
    return it == prewarmed_.end() ? nullptr : &it->second;
}

void
BenchSession::writeJsonDoc() const
{
    std::ofstream os(json_path_);
    if (!os) {
        warn("cannot open --json output path: ", json_path_);
        return;
    }
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.field("schema_version", kSchemaVersion);
    w.field("bench", bench_name_);
    // Conditional fields: absent in a normal fault-free session, so the
    // default document layout (and the pinned golden digest) is
    // untouched.
    if (aborted_) {
        w.field("status", "aborted");
        w.field("abort_reason", abort_reason_);
    }
    if (interrupted_) {
        w.field("status", "interrupted");
        w.field("interrupted_iteration", interrupted_iteration_);
        if (!interrupted_checkpoint_.empty())
            w.field("checkpoint", interrupted_checkpoint_);
        if (interrupted_signal_ != 0)
            w.field("signal", interrupted_signal_);
    }
    if (faults_.has_value())
        w.field("fault_plan", faults_->describe());
    w.key("args").beginArray();
    for (const std::string &a : args_)
        w.value(a);
    w.endArray();
    w.field("interval_cycles", interval_cycles_);
    if (sink_ != nullptr)
        w.field("trace_events", static_cast<std::uint64_t>(
                                    sink_->numEvents()));
    w.key("runs").beginArray();
    for (const RunRecord &rec : runs_) {
        w.beginObject();
        w.field("dataset", rec.dataset);
        w.field("algorithm", rec.algorithm);
        w.field("machine", rec.machine);
        w.field("cycles", rec.outcome.cycles);
        w.key("params");
        writeParamsJson(w, rec.outcome.params);
        w.key("stats");
        rec.outcome.stats.writeJson(w);
        w.key("derived");
        writeDerivedJson(w, rec.outcome);
        if (sim_threads_given_) {
            // Conditional field (like "faults"): only sessions given an
            // explicit --sim-threads emit it, so the default layout the
            // golden digests pin is untouched. blocking_waits is
            // deliberately absent — it is wall-clock-dependent, and this
            // object must stay byte-identical across thread counts.
            const ScriptReplayStats &rs = rec.outcome.replay;
            w.key("sim_parallel").beginObject();
            w.field("epochs", rs.epochs);
            w.field("merged_items", rs.merged_items);
            w.field("merged_ops", rs.merged_ops);
            w.field("max_queue_depth", rs.max_queue_depth);
            w.field("concurrent_hook_items", rs.concurrent_hook_items);
            w.endObject();
        }
        if (!rec.stat_tree_json.empty())
            w.key("stat_tree").rawValue(rec.stat_tree_json);
        if (!rec.fault_json.empty())
            w.key("faults").rawValue(rec.fault_json);
        w.key("intervals");
        rec.intervals.writeJson(w);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    omega_assert(w.complete(), "bench JSON document left unterminated");
    os << '\n';
}

void
BenchSession::writeProfileDoc() const
{
    std::ofstream os(profile_path_);
    if (!os) {
        warn("cannot open --profile output path: ", profile_path_);
        return;
    }
    // Deliberately a separate document from --json: the main document's
    // layout is digest-frozen, and profile payloads are large. Runs are
    // emitted in consumption order (like writeJsonDoc), so the document
    // is byte-identical for any --jobs value.
    JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.field("schema_version", kSchemaVersion);
    w.field("bench", bench_name_);
    if (aborted_) {
        w.field("status", "aborted");
        w.field("abort_reason", abort_reason_);
    }
    w.key("args").beginArray();
    for (const std::string &a : args_)
        w.value(a);
    w.endArray();
    w.field("profile_compiled_in", profile::compiledIn());
    w.key("runs").beginArray();
    for (const RunRecord &rec : runs_) {
        w.beginObject();
        w.field("dataset", rec.dataset);
        w.field("algorithm", rec.algorithm);
        w.field("machine", rec.machine);
        w.field("cycles", rec.outcome.cycles);
        w.key("profile");
        if (!rec.profile_json.empty())
            w.rawValue(rec.profile_json);
        else
            w.null();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    omega_assert(w.complete(), "profile document left unterminated");
    os << '\n';
}

void
BenchSession::writeTraceFile() const
{
    std::ofstream os(trace_path_);
    if (!os) {
        warn("cannot open --trace output path: ", trace_path_);
        return;
    }
    sink_->writeChromeTrace(os);
    os << '\n';
}

SweepRunner::SweepRunner()
    : jobs_(g_active_session != nullptr ? g_active_session->jobs() : 1)
{
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs < 1 ? 1 : jobs)
{
}

void
SweepRunner::add(const DatasetSpec &spec, AlgorithmKind algo,
                 MachineKind kind,
                 const std::function<void(MachineParams &)> &tweak)
{
    if (jobs_ <= 1)
        return; // sequential sessions compute on demand in runOn()
    MachineParams params = machineFor(kind, spec);
    if (tweak)
        tweak(params);
    std::string key = runKey(spec, algo, kind, params);
    BenchSession *session = BenchSession::active();
    if (session != nullptr && (session->findPrewarmed(key) != nullptr ||
                               session->hasJournaled(key)))
        return; // runOn() serves it from the prewarm cache or the journal
    for (const PlannedRun &p : planned_) {
        if (p.key == key)
            return;
    }
    planned_.push_back(PlannedRun{spec, algo, kind, tweak, std::move(key)});
}

void
SweepRunner::run()
{
    BenchSession *session = BenchSession::active();
    if (session == nullptr || jobs_ <= 1 || planned_.empty()) {
        planned_.clear();
        return;
    }

    // Materialize every planned graph up front: the first touch builds
    // into the shared cache, so workers only ever read it.
    for (const PlannedRun &p : planned_)
        datasetGraph(p.spec);

    const bool want_json = session->jsonEnabled();
    const bool want_trace = session->traceEnabled();
    const bool want_profile = session->profileEnabled();
    const Cycles interval = session->intervalCycles();
    const FaultPlan *faults = session->faultPlan();
    const unsigned sim_threads = session->simThreads();
    std::vector<CompletedRun> results(planned_.size());
    // Workers must not throw across the pool: capture the first watchdog
    // trip and abort (flushing the partial document) on this thread.
    std::mutex failure_mutex;
    std::optional<std::string> failure;
    parallelFor(planned_.size(), jobs_, [&](std::size_t i) {
        // Workers run with no coordinator (checkpointing a run requires
        // exclusive use of the shared section registry); on SIGINT or
        // SIGTERM they simply stop picking up points, and the journal
        // lets the resumed sweep redo only what is missing.
        if (pendingCheckpointSignal() != 0)
            return;
        const PlannedRun &p = planned_[i];
        try {
            results[i] = executeRun(p.spec, p.algo, p.kind, p.tweak,
                                    want_json, want_trace, interval, faults,
                                    want_profile, sim_threads);
            if (session->checkpointing())
                session->journalCompleted(p.key, results[i]);
        } catch (const WatchdogError &e) {
            std::lock_guard<std::mutex> lock(failure_mutex);
            if (!failure.has_value())
                failure = e.what();
        }
    });
    if (failure.has_value())
        session->abortSession(*failure);
    if (const int sig = pendingCheckpointSignal()) {
        CheckpointInterrupt e({}, 0, sig);
        session->noteInterrupted(e);
        if (session->rethrowInterrupt())
            throw e;
        std::exit(128 + sig);
    }
    // Deposit in plan order; the bench's own loops consume from the map
    // in their original sequential order, so recorded output is
    // independent of which worker finished first.
    for (std::size_t i = 0; i < planned_.size(); ++i)
        session->storePrewarmed(std::move(planned_[i].key),
                                std::move(results[i]));
    planned_.clear();
}

} // namespace omega::bench
