/**
 * @file
 * Section III + VI ablation: software-only vertex reordering on the
 * BASELINE machine, and the quality of each ordering for OMEGA.
 *
 * Paper findings: in-degree reordering gives +12% LLC hit rate but only
 * ~8% speedup; out-degree +2%/6.3%; SlashBurn no improvement. Any
 * monotone-popularity ordering works for OMEGA's mapping; the
 * nth-element variant is deployed for its linear preprocessing time.
 */

#include <iostream>

#include "bench_common.hh"
#include "graph/reorder.hh"
#include "sim/baseline_machine.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_ablation_reordering", argc, argv);
    printBanner(std::cout,
                "Ablation: offline reordering on the baseline (PageRank, "
                "lj)");

    const DatasetSpec spec = *findDataset("lj");
    // The "original" ordering: the generator's raw ids (like the crawl
    // order of the real datasets, these already have some locality —
    // R-MAT concentrates hubs at low ids).
    Graph natural = buildDataset(spec);

    const std::vector<ReorderKind> kinds{
        ReorderKind::Identity,        ReorderKind::InDegreeSort,
        ReorderKind::InDegreeTopSort, ReorderKind::InDegreeNthElement,
        ReorderKind::OutDegreeSort,   ReorderKind::SlashburnLite};

    Cycles base_cycles = 0;
    double base_hit = 0.0;
    Table t({"ordering", "LLC hit%", "dLLC", "cycles", "speedup",
             "top-20% prefix coverage"});
    for (ReorderKind kind : kinds) {
        Graph g = reorderGraph(natural, kind);
        BaselineMachine m(machineFor(MachineKind::Baseline, spec));
        const Cycles c =
            runAlgorithmOnMachine(AlgorithmKind::PageRank, g, &m);
        const double hit = m.report().l2HitRate();
        if (kind == ReorderKind::Identity) {
            base_cycles = c;
            base_hit = hit;
        }
        t.row()
            .cell(reorderKindName(kind))
            .cell(100.0 * hit, 1)
            .cell(100.0 * (hit - base_hit), 1)
            .cell(c)
            .cell(formatSpeedup(static_cast<double>(base_cycles) /
                                static_cast<double>(c)))
            .cell(formatPercent(prefixInEdgeCoverage(g, 0.2)));
    }
    t.print(std::cout);

    std::cout << "\nPaper: in-degree +12% LLC, 8% speedup; out-degree "
                 "+2%, 6.3%; SlashBurn no improvement. Reordering alone "
                 "is not the 2x OMEGA win.\n";
    return 0;
}
