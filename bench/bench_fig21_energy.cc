/**
 * @file
 * Fig 21 reproduction: memory-system energy breakdown for PageRank.
 * Paper: OMEGA saves 2.5x overall; the scratchpads are cheaper per
 * access than the caches and most DRAM traffic disappears.
 */

#include <iostream>

#include "bench_common.hh"
#include "model/energy_model.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_fig21_energy", argc, argv);
    printBanner(std::cout,
                "Fig 21: memory-system energy breakdown (PageRank)");

    Table t({"dataset", "machine", "cache mJ", "sp mJ", "noc mJ",
             "dram mJ", "static mJ", "atomic mJ", "total mJ", "saving"});
    std::vector<double> savings;
    SweepRunner sweep;
    for (const auto &spec : powerLawDatasets()) {
        sweep.add(spec, AlgorithmKind::PageRank, MachineKind::Baseline);
        sweep.add(spec, AlgorithmKind::PageRank, MachineKind::Omega);
    }
    sweep.run();
    for (const auto &spec : powerLawDatasets()) {
        const RunOutcome base =
            runOn(spec, AlgorithmKind::PageRank, MachineKind::Baseline);
        const RunOutcome om =
            runOn(spec, AlgorithmKind::PageRank, MachineKind::Omega);
        const auto eb = computeMemoryEnergy(base.stats, base.params);
        const auto eo = computeMemoryEnergy(om.stats, om.params);
        const double saving = eb.total() / eo.total();
        savings.push_back(saving);
        auto add = [&](const char *machine, const EnergyBreakdown &e,
                       const std::string &save) {
            t.row()
                .cell(spec.name)
                .cell(machine)
                .cell(e.cache_j * 1e3, 3)
                .cell(e.scratchpad_j * 1e3, 3)
                .cell(e.noc_j * 1e3, 3)
                .cell(e.dram_j * 1e3, 3)
                .cell(e.static_j * 1e3, 3)
                .cell(e.atomic_j * 1e3, 3)
                .cell(e.total() * 1e3, 3)
                .cell(save);
        };
        add("baseline", eb, "");
        add("omega", eo, formatSpeedup(saving));
    }
    t.print(std::cout);

    std::cout << "\nGeomean memory-energy saving: "
              << formatSpeedup(geoMean(savings))
              << "  (paper: 2.5x average)\n";
    return 0;
}
