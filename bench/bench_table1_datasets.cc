/**
 * @file
 * Table I reproduction: graph dataset characterization.
 *
 * Prints, for every stand-in, the measured vertex/edge counts, direction,
 * top-20% in/out-degree connectivity and power-law classification next to
 * the paper's reference values.
 */

#include <iostream>

#include "bench_common.hh"
#include "graph/degree_stats.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_table1_datasets", argc, argv);
    printBanner(std::cout, "Table I: graph dataset characterization "
                           "(stand-ins vs paper)");

    Table t({"dataset", "paper name", "#vertices", "#edges", "type",
             "in-conn%", "paper", "out-conn%", "paper", "power law",
             "paper"});
    for (const auto &spec : allDatasets()) {
        const Graph &g = datasetGraph(spec);
        const DegreeStats s = computeDegreeStats(g);
        t.row()
            .cell(spec.name)
            .cell(spec.paper_name)
            .cell(std::uint64_t(g.numVertices()))
            .cell(std::uint64_t(g.numEdges()))
            .cell(spec.directed ? "dir." : "undir.")
            .cell(100.0 * s.in_degree_connectivity, 1)
            .cell(spec.paper_in_conn_pct, 1)
            .cell(100.0 * s.out_degree_connectivity, 1)
            .cell(spec.paper_out_conn_pct, 1)
            .cell(s.power_law ? "yes" : "no")
            .cell(spec.paper_power_law ? "yes" : "no");
    }
    t.print(std::cout);

    std::cout << "\nSizes are scaled stand-ins (capacity_scale per "
                 "dataset); connectivity columns are the fidelity "
                 "criterion, matching Table I within a few points.\n";
    return 0;
}
