/**
 * @file
 * Host-throughput baseline: how fast does this build simulate?
 *
 * Times the fig14-style sweep (8 algorithms x compatible simulation
 * datasets x {baseline, omega}) with a wall clock and reports simulated
 * edges per second (sum of dataset arcs over the runs, divided by wall
 * time) and simulated cycles per second, per machine, per algorithm and
 * overall. Runs are strictly sequential — this binary measures the
 * per-run kernel, so --jobs parallelism would only obscure it.
 *
 * With --json [path] a schema-versioned BENCH_throughput.json is written
 * (default path: BENCH_throughput.json) so successive commits accumulate
 * a perf trajectory. An optional reference measurement — the same sweep
 * timed on an earlier build — can be embedded via --ref-* so the
 * document carries both numbers of a before/after comparison.
 *
 * --sim-threads <n> routes through a BenchSession so every run steps its
 * per-core timing models with an n-worker script pipeline (clamped to
 * hardware concurrency like the other benches); results are bit-identical
 * to the serial path, only the wall clock moves. The effective value is
 * recorded in the JSON document as "sim_threads".
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "util/json.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

namespace {

/** Document layout version (bump on incompatible schema changes). */
constexpr int kThroughputSchemaVersion = 1;

struct RunTiming
{
    std::string algorithm;
    std::string dataset;
    std::string machine;
    double wall_seconds = 0.0;
    std::uint64_t edges = 0;
    std::uint64_t cycles = 0;
};

struct Aggregate
{
    double wall_seconds = 0.0;
    std::uint64_t edges = 0;
    std::uint64_t cycles = 0;

    void
    add(const RunTiming &r)
    {
        wall_seconds += r.wall_seconds;
        edges += r.edges;
        cycles += r.cycles;
    }
    double
    edgesPerSecond() const
    {
        return wall_seconds > 0.0
                   ? static_cast<double>(edges) / wall_seconds
                   : 0.0;
    }
    double
    cyclesPerSecond() const
    {
        return wall_seconds > 0.0
                   ? static_cast<double>(cycles) / wall_seconds
                   : 0.0;
    }
};

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::string ref_label;
    double ref_edges_per_sec = 0.0;
    double ref_wall_seconds = 0.0;
    long sim_threads = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--json") {
            // Path is optional: bare --json selects the canonical name.
            if (i + 1 < argc && argv[i + 1][0] != '-')
                json_path = argv[++i];
            else
                json_path = "BENCH_throughput.json";
        } else if (arg == "--ref-label") {
            ref_label = next_value("--ref-label");
        } else if (arg == "--ref-edges-per-sec") {
            ref_edges_per_sec =
                std::strtod(next_value("--ref-edges-per-sec").c_str(),
                            nullptr);
        } else if (arg == "--ref-wall-seconds") {
            ref_wall_seconds =
                std::strtod(next_value("--ref-wall-seconds").c_str(),
                            nullptr);
        } else if (arg == "--sim-threads") {
            sim_threads =
                std::strtol(next_value("--sim-threads").c_str(), nullptr,
                            10);
            if (sim_threads <= 0) {
                std::cerr << "--sim-threads needs a positive integer\n";
                std::exit(2);
            }
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            std::exit(2);
        }
    }

    // This bench predates BenchSession and keeps its own argv loop, but
    // the intra-run worker count lives on the session runOn() consults —
    // so synthesize a minimal one carrying just --sim-threads. The
    // session applies the same validation and hardware-concurrency clamp
    // as every other bench and, lacking --json/--trace, writes nothing.
    std::optional<BenchSession> session;
    std::string thread_flag = "--sim-threads";
    std::string thread_value = std::to_string(sim_threads);
    if (sim_threads > 0) {
        char *sargv[] = {argv[0], thread_flag.data(), thread_value.data()};
        session.emplace("bench_throughput", 3, sargv);
    }
    const unsigned effective_threads =
        session.has_value() ? session->simThreads() : 1u;

    printBanner(std::cout,
                "Host throughput: wall-clock of the fig14 sweep");

    const std::vector<AlgorithmKind> algos{
        AlgorithmKind::PageRank, AlgorithmKind::BFS, AlgorithmKind::SSSP,
        AlgorithmKind::BC,       AlgorithmKind::Radii,
        AlgorithmKind::CC,       AlgorithmKind::TC,
        AlgorithmKind::KC};
    const std::vector<MachineKind> machines = paperMachineKinds();

    // Build (and cache) every graph up front: dataset construction and
    // reordering are one-time costs, not simulation throughput.
    for (AlgorithmKind algo : algos) {
        for (const auto &spec : datasetsFor(algo, simulationDatasets()))
            datasetGraph(spec);
    }

    std::vector<RunTiming> runs;
    for (AlgorithmKind algo : algos) {
        for (const auto &spec : datasetsFor(algo, simulationDatasets())) {
            const std::uint64_t arcs = datasetGraph(spec).numArcs();
            for (MachineKind kind : machines) {
                const double t0 = nowSeconds();
                const RunOutcome out = runOn(spec, algo, kind);
                const double wall = nowSeconds() - t0;
                RunTiming r;
                r.algorithm = algorithmName(algo);
                r.dataset = spec.name;
                r.machine = machineKindName(kind);
                r.wall_seconds = wall;
                r.edges = arcs;
                r.cycles = out.cycles;
                runs.push_back(r);
            }
        }
    }

    Aggregate total;
    std::map<std::string, Aggregate> per_machine;
    std::map<std::string, Aggregate> per_algo;
    for (const RunTiming &r : runs) {
        total.add(r);
        per_machine[r.machine].add(r);
        per_algo[r.algorithm].add(r);
    }

    Table t({"algorithm", "dataset", "machine", "wall s", "Medges/s",
             "Mcycles/s"});
    for (const RunTiming &r : runs) {
        t.row()
            .cell(r.algorithm)
            .cell(r.dataset)
            .cell(r.machine)
            .cell(formatDouble(r.wall_seconds, 3))
            .cell(formatDouble(
                r.wall_seconds > 0.0
                    ? static_cast<double>(r.edges) / r.wall_seconds / 1e6
                    : 0.0,
                3))
            .cell(formatDouble(
                r.wall_seconds > 0.0
                    ? static_cast<double>(r.cycles) / r.wall_seconds / 1e6
                    : 0.0,
                3));
    }
    t.print(std::cout);

    std::cout << "\nPer-machine totals:\n";
    Table m({"machine", "wall s", "Medges/s", "Mcycles/s"});
    for (const auto &[name, agg] : per_machine) {
        m.row()
            .cell(name)
            .cell(formatDouble(agg.wall_seconds, 3))
            .cell(formatDouble(agg.edgesPerSecond() / 1e6, 3))
            .cell(formatDouble(agg.cyclesPerSecond() / 1e6, 3));
    }
    m.print(std::cout);

    std::cout << "\nSweep total: " << formatDouble(total.wall_seconds, 2)
              << " s wall, "
              << formatDouble(total.edgesPerSecond() / 1e6, 3)
              << " Medges/s, "
              << formatDouble(total.cyclesPerSecond() / 1e6, 3)
              << " Mcycles/s\n";
    if (ref_edges_per_sec > 0.0) {
        std::cout << "Reference"
                  << (ref_label.empty() ? "" : " (" + ref_label + ")")
                  << ": " << formatDouble(ref_edges_per_sec / 1e6, 3)
                  << " Medges/s -> "
                  << formatDouble(total.edgesPerSecond() /
                                      ref_edges_per_sec,
                                  2)
                  << "x\n";
    }

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        JsonWriter w(os, /*pretty=*/true);
        w.beginObject();
        w.field("schema_version", kThroughputSchemaVersion);
        w.field("bench", "bench_throughput");
        w.field("sweep", "fig14");
        w.field("sim_threads", static_cast<std::uint64_t>(effective_threads));
        w.field("wall_seconds_total", total.wall_seconds);
        w.field("simulated_edges_total", total.edges);
        w.field("simulated_cycles_total", total.cycles);
        w.field("edges_per_second", total.edgesPerSecond());
        w.field("cycles_per_second", total.cyclesPerSecond());
        w.key("per_machine").beginObject();
        for (const auto &[name, agg] : per_machine) {
            w.key(name).beginObject();
            w.field("wall_seconds", agg.wall_seconds);
            w.field("edges_per_second", agg.edgesPerSecond());
            w.field("cycles_per_second", agg.cyclesPerSecond());
            w.endObject();
        }
        w.endObject();
        w.key("per_algorithm").beginObject();
        for (const auto &[name, agg] : per_algo) {
            w.key(name).beginObject();
            w.field("wall_seconds", agg.wall_seconds);
            w.field("edges_per_second", agg.edgesPerSecond());
            w.endObject();
        }
        w.endObject();
        w.key("runs").beginArray();
        for (const RunTiming &r : runs) {
            w.beginObject();
            w.field("algorithm", r.algorithm);
            w.field("dataset", r.dataset);
            w.field("machine", r.machine);
            w.field("wall_seconds", r.wall_seconds);
            w.field("edges", r.edges);
            w.field("cycles", r.cycles);
            w.endObject();
        }
        w.endArray();
        if (ref_edges_per_sec > 0.0) {
            w.key("reference").beginObject();
            if (!ref_label.empty())
                w.field("label", ref_label);
            w.field("edges_per_second", ref_edges_per_sec);
            if (ref_wall_seconds > 0.0)
                w.field("wall_seconds_total", ref_wall_seconds);
            w.field("speedup_vs_reference",
                    total.edgesPerSecond() / ref_edges_per_sec);
            w.endObject();
        }
        w.endObject();
        os << "\n";
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
