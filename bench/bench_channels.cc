/**
 * @file
 * Design-space sweep: DRAM channel count across every machine.
 *
 * Green et al. ("Performance Impact of Memory Channels on Sparse and
 * Irregular Algorithms", PAPERS.md) show channel count is a first-order
 * knob for exactly the paper's workloads: the irregular vtxProp stream
 * is latency-bound per request but queue-bound in aggregate, so adding
 * channels converts queueing delay directly into throughput until the
 * demand stream can no longer cover them. This sweep runs PageRank on
 * the smallest power-law dataset across 1-16 channels for every
 * registered machine, so the channel axis and the machine axis (plain
 * cache vs. GRASP cache management vs. scratchpads) can be read against
 * each other from one table.
 */

#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_channels", argc, argv);
    printBanner(std::cout,
                "Design space: DRAM channels x machine (PageRank, sd)");

    const DatasetSpec spec = *findDataset("sd");
    const AlgorithmKind algo = AlgorithmKind::PageRank;
    const std::vector<unsigned> channel_counts{1, 2, 4, 8, 16};

    SweepRunner sweep;
    for (MachineKind kind : allMachineKinds()) {
        for (unsigned channels : channel_counts) {
            sweep.add(spec, algo, kind, [channels](MachineParams &p) {
                p.dram_channels = channels;
            });
        }
    }
    sweep.run();

    Table t({"machine", "channels", "cycles", "speedup vs 1ch",
             "dram queue cycles", "bw util"});
    for (MachineKind kind : allMachineKinds()) {
        std::uint64_t one_channel_cycles = 0;
        for (unsigned channels : channel_counts) {
            const RunOutcome out =
                runOn(spec, algo, kind, [channels](MachineParams &p) {
                    p.dram_channels = channels;
                });
            if (one_channel_cycles == 0)
                one_channel_cycles = out.cycles;
            t.row()
                .cell(machineKindName(kind))
                .cell(static_cast<int>(channels))
                .cell(out.cycles)
                .cell(formatSpeedup(
                    static_cast<double>(one_channel_cycles) /
                    static_cast<double>(out.cycles)))
                .cell(out.stats.dram_queue_cycles)
                .cell(out.stats.dramBandwidthUtilization(out.params), 3);
        }
    }
    t.print(std::cout);

    std::cout << "\nChannels beyond the demand stream's concurrency stop "
                 "paying: watch queue cycles approach zero.\n";
    return 0;
}
