/**
 * @file
 * Fig 17 reproduction: on-chip traffic volume of PageRank.
 * Paper: OMEGA reduces on-chip traffic by 3.2x on average (text also
 * cites over 4x), thanks to word-granularity scratchpad packets and
 * PISC offloading replacing cache-line transfers.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_fig17_onchip_traffic", argc, argv);
    printBanner(std::cout, "Fig 17: on-chip traffic (PageRank)");

    Table t({"dataset", "baseline MB", "omega MB", "baseline flits",
             "omega flits", "reduction"});
    std::vector<double> reductions;
    SweepRunner sweep;
    for (const auto &spec : powerLawDatasets()) {
        sweep.add(spec, AlgorithmKind::PageRank, MachineKind::Baseline);
        sweep.add(spec, AlgorithmKind::PageRank, MachineKind::Omega);
    }
    sweep.run();
    for (const auto &spec : powerLawDatasets()) {
        const RunOutcome base =
            runOn(spec, AlgorithmKind::PageRank, MachineKind::Baseline);
        const RunOutcome om =
            runOn(spec, AlgorithmKind::PageRank, MachineKind::Omega);
        const double reduction =
            static_cast<double>(base.stats.onchip_bytes) /
            static_cast<double>(std::max<std::uint64_t>(
                om.stats.onchip_bytes, 1));
        reductions.push_back(reduction);
        t.row()
            .cell(spec.name)
            .cell(static_cast<double>(base.stats.onchip_bytes) / 1e6, 2)
            .cell(static_cast<double>(om.stats.onchip_bytes) / 1e6, 2)
            .cell(base.stats.onchip_flits)
            .cell(om.stats.onchip_flits)
            .cell(formatSpeedup(reduction));
    }
    t.print(std::cout);

    std::cout << "\nGeomean traffic reduction: "
              << formatSpeedup(geoMean(reductions))
              << "  (paper: 3.2x average)\n";
    return 0;
}
