/**
 * @file
 * Fig 4 reproduction: cache profiling on the baseline CMP.
 *
 * (a) last-level cache hit rates stay low on natural graphs;
 * (b) yet over 75% of the vtxProp accesses target the top-20%
 *     most-connected vertices — the locality caches fail to capture.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_fig4_cache_profile", argc, argv);
    printBanner(std::cout,
                "Fig 4(a): baseline cache hit rates / Fig 4(b): accesses "
                "to the top-20% most-connected vertices");

    const std::vector<std::string> datasets{"sd", "rMat", "wiki", "lj"};
    const std::vector<AlgorithmKind> algos{
        AlgorithmKind::PageRank, AlgorithmKind::BFS, AlgorithmKind::SSSP,
        AlgorithmKind::CC};

    Table t({"workload", "L1 hit%", "LLC hit%", "top-20% access%"});
    std::vector<double> hot_fracs;
    SweepRunner sweep;
    for (const auto &ds : datasets) {
        const DatasetSpec spec = *findDataset(ds);
        for (AlgorithmKind algo : algos) {
            if (algorithmMeta(algo).needs_symmetric && spec.directed)
                continue;
            sweep.add(spec, algo, MachineKind::Baseline);
        }
    }
    for (const auto &ds : {"ap", "rPA"})
        sweep.add(*findDataset(ds), AlgorithmKind::CC,
                  MachineKind::Baseline);
    sweep.run();
    for (const auto &ds : datasets) {
        const DatasetSpec spec = *findDataset(ds);
        for (AlgorithmKind algo : algos) {
            if (algorithmMeta(algo).needs_symmetric && spec.directed)
                continue;
            const RunOutcome r = runOn(spec, algo, MachineKind::Baseline);
            hot_fracs.push_back(r.stats.hotVertexAccessFraction());
            t.row()
                .cell(algorithmName(algo) + "-" + ds)
                .cell(100.0 * r.stats.l1HitRate(), 1)
                .cell(100.0 * r.stats.l2HitRate(), 1)
                .cell(100.0 * r.stats.hotVertexAccessFraction(), 1);
        }
    }
    // CC needs symmetric graphs; add the undirected ones for it.
    for (const auto &ds : {"ap", "rPA"}) {
        const DatasetSpec spec = *findDataset(ds);
        const RunOutcome r =
            runOn(spec, AlgorithmKind::CC, MachineKind::Baseline);
        hot_fracs.push_back(r.stats.hotVertexAccessFraction());
        t.row()
            .cell(std::string("CC-") + ds)
            .cell(100.0 * r.stats.l1HitRate(), 1)
            .cell(100.0 * r.stats.l2HitRate(), 1)
            .cell(100.0 * r.stats.hotVertexAccessFraction(), 1);
    }
    t.print(std::cout);

    double avg = 0.0;
    for (double h : hot_fracs)
        avg += h;
    avg /= static_cast<double>(hot_fracs.size());
    std::cout << "\nAverage top-20% vtxProp access share: "
              << formatPercent(avg)
              << "  (paper: consistently over 75% on natural graphs; "
                 "LLC hit rates below 50%)\n";
    return 0;
}
