/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench binary builds the canonical dataset instances (seed 42),
 * applies the paper's nth-element in-degree reordering, scales the
 * machine capacities by the dataset's capacity_scale (see DESIGN.md,
 * scaling policy) and runs algorithms through the requested machine.
 */

#ifndef OMEGA_BENCH_BENCH_COMMON_HH
#define OMEGA_BENCH_BENCH_COMMON_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/algorithms.hh"
#include "graph/datasets.hh"
#include "sim/interval_stats.hh"
#include "sim/memory_system.hh"
#include "sim/params.hh"
#include "sim/stats_report.hh"

namespace omega::trace {
class TraceSink;
}

namespace omega::bench {

/** Machine flavors the benches compare. */
enum class MachineKind { Baseline, Omega, OmegaSpOnly };

/** Name for table headers. */
std::string machineKindName(MachineKind kind);

/** One simulated run's outcome. */
struct RunOutcome
{
    Cycles cycles = 0;
    StatsReport stats;
    MachineParams params;
};

/** Build + reorder the canonical instance of @p spec (cached per name). */
const Graph &datasetGraph(const DatasetSpec &spec);

/** Machine parameters for @p kind scaled for @p spec. */
MachineParams machineFor(MachineKind kind, const DatasetSpec &spec);

/**
 * Run @p kind x @p algo on the dataset's canonical graph.
 *
 * @param spec dataset (capacities scale with it).
 * @param algo algorithm.
 * @param kind machine flavor.
 * @param tweak optional parameter mutator applied before construction.
 */
RunOutcome runOn(const DatasetSpec &spec, AlgorithmKind algo,
                 MachineKind kind,
                 const std::function<void(MachineParams &)> &tweak = {});

/** Datasets compatible with @p algo (symmetry requirement). */
std::vector<DatasetSpec> datasetsFor(AlgorithmKind algo,
                                     const std::vector<DatasetSpec> &from);

/** The power-law subset used by the PageRank-centric figures. */
std::vector<DatasetSpec> powerLawDatasets();

/** Geometric mean of a non-empty vector. */
double geoMean(const std::vector<double> &values);

/**
 * Machine-readable output session for a bench binary.
 *
 * Construct one at the top of main() with the program arguments; it
 * recognizes (and consumes conceptually — benches take no other args):
 *
 *   --json <path>       write a versioned JSON document with every run's
 *                       parameters, StatsReport, derived metrics, stat
 *                       tree and interval time series;
 *   --trace <path>      record simulated events and write a Chrome
 *                       trace_event file (open in Perfetto);
 *   --interval <cycles> cadence for interval samples (default 0: only
 *                       iteration/final samples are taken).
 *
 * While a session with --json or --trace is alive, runOn() attaches an
 * IntervalRecorder and the trace sink to every machine it builds and
 * reports each run back here; both files are written when the session is
 * destroyed. Without those flags the session is inert and benches behave
 * exactly as before. The emitted document is deterministic: identical
 * runs produce byte-identical files.
 */
class BenchSession
{
  public:
    BenchSession(std::string bench_name, int argc, char **argv);
    ~BenchSession();
    BenchSession(const BenchSession &) = delete;
    BenchSession &operator=(const BenchSession &) = delete;

    /** The innermost live session, or nullptr. */
    static BenchSession *active();

    bool jsonEnabled() const { return !json_path_.empty(); }
    bool traceEnabled() const { return sink_ != nullptr; }
    /** True when runOn() should instrument machines at all. */
    bool observing() const { return jsonEnabled() || traceEnabled(); }
    Cycles intervalCycles() const { return interval_cycles_; }

    /** Document schema version (bump on incompatible layout changes). */
    static constexpr int kSchemaVersion = 1;

    /** Called by runOn() after each simulated run. */
    void recordRun(const std::string &dataset,
                   const std::string &algorithm,
                   const std::string &machine, const RunOutcome &outcome,
                   const MemorySystem &mach,
                   const IntervalRecorder &intervals);

  private:
    struct RunRecord
    {
        std::string dataset;
        std::string algorithm;
        std::string machine;
        RunOutcome outcome;
        /** Pre-rendered (compact) machine stat-tree object, or empty. */
        std::string stat_tree_json;
        IntervalRecorder intervals;
    };

    void writeJsonDoc() const;
    void writeTraceFile() const;

    std::string bench_name_;
    std::vector<std::string> args_;
    std::string json_path_;
    std::string trace_path_;
    Cycles interval_cycles_ = 0;
    std::unique_ptr<trace::TraceSink> sink_;
    std::vector<RunRecord> runs_;
    BenchSession *prev_active_ = nullptr;
};

/**
 * A counting-only MemorySystem for the profiling figures (4b / 5): it
 * tracks vtxProp access distribution with no timing model, so full
 * algorithm x dataset sweeps stay cheap.
 */
class ProfileMachine : public MemorySystem
{
  public:
    explicit ProfileMachine(const MachineParams &params)
        : params_(params)
    {
    }

    void configure(const MachineConfig &config) override
    {
        config_ = config;
    }
    void compute(unsigned, std::uint64_t ops) override
    {
        stats_.instructions += ops;
    }
    void
    memAccess(const MemAccess &access) override
    {
        ++stats_.l1_accesses; // total memory operations
        if (access.cls == AccessClass::VertexProp)
            count(access.vertex);
    }
    void
    readSrcProp(unsigned, VertexId vertex, std::uint64_t,
                std::uint32_t) override
    {
        ++stats_.l1_accesses;
        count(vertex);
    }
    void
    atomicUpdate(const AtomicRequest &request) override
    {
        ++stats_.l1_accesses;
        ++stats_.atomics_total;
        count(request.vertex);
    }
    void barrier() override {}
    void endIteration() override {}
    Cycles coreNow(unsigned) const override { return 0; }
    Cycles cycles() const override { return 0; }
    StatsReport report() const override { return stats_; }
    const MachineParams &params() const override { return params_; }
    std::string name() const override { return "profile"; }

  private:
    void
    count(VertexId vertex)
    {
        ++stats_.vtxprop_accesses;
        if (vertex < config_.hot_boundary)
            ++stats_.vtxprop_hot_accesses;
    }

    MachineParams params_;
    MachineConfig config_;
    StatsReport stats_;
};

} // namespace omega::bench

#endif // OMEGA_BENCH_BENCH_COMMON_HH
