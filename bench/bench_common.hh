/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench binary builds the canonical dataset instances (seed 42),
 * applies the paper's nth-element in-degree reordering, scales the
 * machine capacities by the dataset's capacity_scale (see DESIGN.md,
 * scaling policy) and runs algorithms through the requested machine.
 */

#ifndef OMEGA_BENCH_BENCH_COMMON_HH
#define OMEGA_BENCH_BENCH_COMMON_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "algorithms/algorithms.hh"
#include "graph/datasets.hh"
#include "sim/checkpoint.hh"
#include "sim/fault.hh"
#include "sim/interval_stats.hh"
#include "sim/memory_system.hh"
#include "sim/params.hh"
#include "sim/profile.hh"
#include "sim/stats_report.hh"

namespace omega::trace {
class TraceSink;
}

namespace omega::bench {

/**
 * Machine flavors the benches compare. Each maps 1:1 onto a machine
 * registry entry (sim/machine_registry.hh); names, parameters and
 * construction all route through the registry, never through literals.
 */
enum class MachineKind { Baseline, Grasp, Omega, OmegaSpOnly };

/** Canonical registry name (table headers, --json "machine" fields). */
std::string machineKindName(MachineKind kind);

/** Every registered machine, in canonical sweep order. */
std::vector<MachineKind> allMachineKinds();

/** The paper's headline comparison pair: {Baseline, Omega}. Benches
 *  reproducing a paper figure iterate this instead of hard-coding the
 *  pair, so the figure set and the design-space sweeps stay in sync. */
std::vector<MachineKind> paperMachineKinds();

/** One simulated run's outcome. */
struct RunOutcome
{
    Cycles cycles = 0;
    StatsReport stats;
    MachineParams params;
    /** Headline access-profile numbers (armed profiled runs only;
     *  all-zero with profile.armed == false otherwise). */
    ProfileSummary profile;
    /** Scripted-replay pipeline counters (sim/engine_ops.hh). Every
     *  field except blocking_waits is deterministic across sim_threads
     *  values; blocking_waits is wall-clock-dependent and never
     *  rendered into byte-compared output. */
    ScriptReplayStats replay;
};

/** Build + reorder the canonical instance of @p spec (cached per name). */
const Graph &datasetGraph(const DatasetSpec &spec);

/** Machine parameters for @p kind scaled for @p spec. */
MachineParams machineFor(MachineKind kind, const DatasetSpec &spec);

/**
 * Run @p kind x @p algo on the dataset's canonical graph.
 *
 * @param spec dataset (capacities scale with it).
 * @param algo algorithm.
 * @param kind machine flavor.
 * @param tweak optional parameter mutator applied before construction.
 */
RunOutcome runOn(const DatasetSpec &spec, AlgorithmKind algo,
                 MachineKind kind,
                 const std::function<void(MachineParams &)> &tweak = {});

/** Datasets compatible with @p algo (symmetry requirement). */
std::vector<DatasetSpec> datasetsFor(AlgorithmKind algo,
                                     const std::vector<DatasetSpec> &from);

/** The power-law subset used by the PageRank-centric figures. */
std::vector<DatasetSpec> powerLawDatasets();

/** Geometric mean of a non-empty vector. */
double geoMean(const std::vector<double> &values);

/**
 * Everything one finished simulation produced: the outcome plus the
 * observability artifacts rendered while the machine was alive. Value
 * type so the sweep runner can compute it on a worker thread and the
 * session can consume it later on the main thread.
 */
struct CompletedRun
{
    RunOutcome outcome;
    /** Pre-rendered (compact) machine stat-tree object, or empty. */
    std::string stat_tree_json;
    IntervalRecorder intervals;
    /** Per-run trace events (only when the session traces). */
    std::unique_ptr<trace::TraceSink> trace_sink;
    /** Pre-rendered fault campaign object (only when faults are armed). */
    std::string fault_json;
    /** Pre-rendered access-profile object (only when profiling). */
    std::string profile_json;
};

/**
 * Machine-readable output session for a bench binary.
 *
 * Construct one at the top of main() with the program arguments; it
 * recognizes and consumes:
 *
 *   --json <path>       write a versioned JSON document with every run's
 *                       parameters, StatsReport, derived metrics, stat
 *                       tree and interval time series;
 *   --trace <path>      record simulated events and write a Chrome
 *                       trace_event file (open in Perfetto);
 *   --interval <cycles> cadence for interval samples (default 0: only
 *                       iteration/final samples are taken);
 *   --jobs <n>          execute SweepRunner-planned runs on up to n
 *                       threads (default 1: fully sequential);
 *   --sim-threads <n>   intra-run parallelism: script-generation worker
 *                       threads inside each simulated run (default 1).
 *                       Simulated results are bit-identical for every
 *                       value (DESIGN.md "Epoch-scripted parallelism").
 *                       Values above the host's hardware concurrency are
 *                       clamped to it with a warning — extra workers
 *                       could only time-slice, adding overhead without
 *                       changing results. Passing the flag (any value)
 *                       adds a per-run "sim_parallel" counters object to
 *                       the --json document;
 *   --faults <spec>     arm every machine runOn() builds with the fault
 *                       plan parsed from <spec> (see FaultPlan::parse);
 *   --profile <path>    arm access profiling on every machine and write a
 *                       separate versioned JSON document with each run's
 *                       reuse-distance/3C/region/phase profile. Needs an
 *                       OMEGA_PROFILE build to collect anything (a
 *                       warning and all-zero profiles otherwise);
 *   --checkpoint <path> crash-recoverable runs: flush a versioned,
 *                       checksummed snapshot of the full simulation
 *                       state to <path> at iteration boundaries (on
 *                       SIGINT/SIGTERM, and on the --checkpoint-every
 *                       cadence), and journal each completed sweep run
 *                       to <path>.journal;
 *   --checkpoint-every <n>  also checkpoint every n completed
 *                       iterations (requires --checkpoint, n >= 1);
 *   --resume <path>     resume from the snapshot at <path>: journaled
 *                       runs are served without re-simulation and the
 *                       interrupted run continues from its snapshot,
 *                       reproducing the uninterrupted session's output
 *                       byte for byte. Checkpoint flags cannot be
 *                       combined with --trace or --profile.
 *
 * Flag operands are validated: a missing operand, a malformed or
 * out-of-range number (--jobs 0), a bad fault spec, or an unrecognized
 * '-' flag prints a usage message and exits with status 2. Remaining
 * non-flag arguments are left for the bench itself (and are the only
 * ones echoed into the JSON document, so the document is independent of
 * output paths and job count).
 *
 * While a session with --json or --trace is alive, runOn() instruments
 * every machine it builds with a per-run IntervalRecorder and trace sink
 * and reports each run back here; both files are written when the
 * session is destroyed. Without those flags the session only carries the
 * job count. Runs are always recorded in the order the bench consumes
 * them (its loop order), never in execution order, so the emitted
 * documents are deterministic and byte-identical for any --jobs value.
 */
class BenchSession
{
  public:
    BenchSession(std::string bench_name, int argc, char **argv);
    ~BenchSession();
    BenchSession(const BenchSession &) = delete;
    BenchSession &operator=(const BenchSession &) = delete;

    /** The innermost live session, or nullptr. */
    static BenchSession *active();

    bool jsonEnabled() const { return !json_path_.empty(); }
    bool traceEnabled() const { return sink_ != nullptr; }
    bool profileEnabled() const { return !profile_path_.empty(); }
    /** True when runOn() should instrument machines at all. */
    bool observing() const
    {
        return jsonEnabled() || traceEnabled() || profileEnabled();
    }
    Cycles intervalCycles() const { return interval_cycles_; }
    /** Arguments the session left for the bench (echoed into JSON). */
    const std::vector<std::string> &args() const { return args_; }
    /** Worker threads for SweepRunner (--jobs, >= 1). */
    unsigned jobs() const { return jobs_; }
    /** Intra-run script-generation threads (--sim-threads, >= 1). */
    unsigned simThreads() const { return sim_threads_; }
    /** The --faults plan, or nullptr when no campaign is armed. */
    const FaultPlan *faultPlan() const
    {
        return faults_.has_value() ? &*faults_ : nullptr;
    }

    /** True when --checkpoint and/or --resume was given. */
    bool checkpointing() const
    {
        return !checkpoint_path_.empty() || !resume_path_.empty();
    }
    /** The session's coordinator (tests install test_stop here). */
    CheckpointCoordinator &coordinator() { return coordinator_; }
    /** Test knob: make runOn() rethrow CheckpointInterrupt after
     *  flushing the partial documents instead of exiting the process. */
    void setRethrowInterrupt(bool v) { rethrow_interrupt_ = v; }
    bool rethrowInterrupt() const { return rethrow_interrupt_; }

    /** Record interrupted status and flush the partial documents
     *  ("status": "interrupted"); the caller exits or rethrows. */
    void noteInterrupted(const CheckpointInterrupt &e);
    /** Merge an aborted run's buffered trace events into the session
     *  sink (watchdog/interrupt paths, where recordCompleted() never
     *  runs). Thread-safe. */
    void mergeAbortTrace(const trace::TraceSink &sink);

    /** @name Sweep journal (crash-recoverable sweeps). @{ */
    /** Append @p run to the on-disk journal (no-op without
     *  --checkpoint). Thread-safe: SweepRunner workers call this. */
    void journalCompleted(const std::string &key, const CompletedRun &run);
    /** Remove and return the journaled record for @p key ({} if none). */
    std::vector<std::uint8_t> takeJournaled(const std::string &key);
    bool hasJournaled(const std::string &key) const;
    /** @} */

    /**
     * Fatal-fault/watchdog bailout: flush the partial --json document
     * with "status": "aborted" and the reason (plus any trace collected
     * so far) instead of losing the whole sweep, then exit(1).
     */
    [[noreturn]] void abortSession(const std::string &reason);

    /** Document schema version (bump on incompatible layout changes). */
    static constexpr int kSchemaVersion = 1;

    /**
     * Called by runOn() when the bench consumes a run: appends it to the
     * JSON document and merges its trace events, in consumption order.
     */
    void recordCompleted(const std::string &dataset,
                         const std::string &algorithm,
                         const std::string &machine,
                         const CompletedRun &run);

    /** @name Memoized results (filled by SweepRunner, read by runOn). @{ */
    void storePrewarmed(std::string key, CompletedRun run);
    const CompletedRun *findPrewarmed(const std::string &key) const;
    /** @} */

  private:
    struct RunRecord
    {
        std::string dataset;
        std::string algorithm;
        std::string machine;
        RunOutcome outcome;
        std::string stat_tree_json;
        IntervalRecorder intervals;
        std::string fault_json;
        std::string profile_json;
    };

    void writeJsonDoc() const;
    void writeTraceFile() const;
    void writeProfileDoc() const;
    std::string journalPath() const { return checkpoint_path_ + ".journal"; }

    std::string bench_name_;
    /** Arguments not consumed by the session (bench-specific). */
    std::vector<std::string> args_;
    std::string json_path_;
    std::string trace_path_;
    std::string profile_path_;
    Cycles interval_cycles_ = 0;
    unsigned jobs_ = 1;
    unsigned sim_threads_ = 1;
    /** An explicit --sim-threads was given: gate for the per-run
     *  "sim_parallel" JSON object, keeping the default document layout
     *  (and the pinned golden digests over it) unchanged. */
    bool sim_threads_given_ = false;
    std::optional<FaultPlan> faults_;
    bool aborted_ = false;
    std::string abort_reason_;
    std::string checkpoint_path_;
    std::uint64_t checkpoint_every_ = 0;
    std::string resume_path_;
    CheckpointCoordinator coordinator_;
    bool rethrow_interrupt_ = false;
    bool signal_handlers_installed_ = false;
    bool interrupted_ = false;
    std::uint64_t interrupted_iteration_ = 0;
    std::string interrupted_checkpoint_;
    int interrupted_signal_ = 0;
    /** Journal records of the interrupted session, keyed by run key. */
    mutable std::mutex journal_mutex_;
    std::map<std::string, std::vector<std::uint8_t>> journal_;
    std::mutex abort_trace_mutex_;
    std::unique_ptr<trace::TraceSink> sink_;
    std::vector<RunRecord> runs_;
    std::map<std::string, CompletedRun> prewarmed_;
    BenchSession *prev_active_ = nullptr;
};

/**
 * Parallel sweep planner: runs independent (dataset, algorithm, machine)
 * simulations concurrently and memoizes the results so the bench's
 * existing sequential loops — runOn() calls interleaved with table
 * building — consume them unchanged.
 *
 * Usage: mirror the bench's runOn() calls with add() calls, then run()
 * once before the output loops. add() deduplicates by the run's full
 * identity (dataset, algorithm, machine kind, post-tweak parameters), so
 * over-planning is harmless. With --jobs 1 (the default) run() is a
 * no-op and runOn() computes on demand exactly as before; with N jobs
 * the planned runs execute on a thread pool and only the *execution*
 * is concurrent — recording order, and therefore every byte of --json
 * and --trace output, is identical for any job count.
 */
class SweepRunner
{
  public:
    /** Job count from the active BenchSession (1 when none is live). */
    SweepRunner();
    /** Explicit job count (tests). */
    explicit SweepRunner(unsigned jobs);

    /** Plan one run; mirrors runOn()'s arguments. */
    void add(const DatasetSpec &spec, AlgorithmKind algo, MachineKind kind,
             const std::function<void(MachineParams &)> &tweak = {});

    /** Execute all planned runs (up to jobs() at a time) and memoize. */
    void run();

    unsigned jobs() const { return jobs_; }
    std::size_t pending() const { return planned_.size(); }

  private:
    struct PlannedRun
    {
        DatasetSpec spec;
        AlgorithmKind algo;
        MachineKind kind;
        std::function<void(MachineParams &)> tweak;
        std::string key;
    };

    unsigned jobs_;
    std::vector<PlannedRun> planned_;
};

/**
 * A counting-only MemorySystem for the profiling figures (4b / 5): it
 * tracks vtxProp access distribution with no timing model, so full
 * algorithm x dataset sweeps stay cheap.
 */
class ProfileMachine : public MemorySystem
{
  public:
    explicit ProfileMachine(const MachineParams &params)
        : params_(params)
    {
    }

    void configure(const MachineConfig &config) override
    {
        config_ = config;
    }
    void compute(unsigned, std::uint64_t ops) override
    {
        stats_.instructions += ops;
    }
    void
    memAccess(const MemAccess &access) override
    {
        ++stats_.l1_accesses; // total memory operations
        if (access.cls == AccessClass::VertexProp)
            count(access.vertex);
    }
    void
    readSrcProp(unsigned, VertexId vertex, std::uint64_t,
                std::uint32_t) override
    {
        ++stats_.l1_accesses;
        count(vertex);
    }
    void
    atomicUpdate(const AtomicRequest &request) override
    {
        ++stats_.l1_accesses;
        ++stats_.atomics_total;
        count(request.vertex);
    }
    void barrier() override {}
    void endIteration() override {}
    Cycles coreNow(unsigned) const override { return 0; }
    Cycles cycles() const override { return 0; }
    StatsReport report() const override { return stats_; }
    const MachineParams &params() const override { return params_; }
    std::string name() const override { return "profile"; }

  private:
    void
    count(VertexId vertex)
    {
        ++stats_.vtxprop_accesses;
        if (vertex < config_.hot_boundary)
            ++stats_.vtxprop_hot_accesses;
    }

    MachineParams params_;
    MachineConfig config_;
    StatsReport stats_;
};

} // namespace omega::bench

#endif // OMEGA_BENCH_BENCH_COMMON_HH
