/**
 * @file
 * Section III ablation: atomic-instruction overhead on the baseline.
 * Following GraphPIM's methodology (which the paper adopts), every
 * atomic is replaced by a plain read-modify-write; the paper estimates
 * up to 50% overhead from atomics.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_ablation_atomics", argc, argv);
    printBanner(std::cout,
                "Ablation: atomic-instruction overhead on the baseline "
                "(PageRank)");

    Table t({"dataset", "with atomics", "plain r/w", "atomic overhead"});
    SweepRunner sweep;
    for (const auto &ds : {"sd", "rMat", "wiki", "lj"}) {
        const DatasetSpec spec = *findDataset(ds);
        sweep.add(spec, AlgorithmKind::PageRank, MachineKind::Baseline);
        sweep.add(spec, AlgorithmKind::PageRank, MachineKind::Baseline,
                  [](MachineParams &p) { p.atomics_as_plain = true; });
    }
    sweep.run();
    for (const auto &ds : {"sd", "rMat", "wiki", "lj"}) {
        const DatasetSpec spec = *findDataset(ds);
        const RunOutcome with_atomics =
            runOn(spec, AlgorithmKind::PageRank, MachineKind::Baseline);
        const RunOutcome plain = runOn(
            spec, AlgorithmKind::PageRank, MachineKind::Baseline,
            [](MachineParams &p) { p.atomics_as_plain = true; });
        const double overhead =
            static_cast<double>(with_atomics.cycles) /
                static_cast<double>(plain.cycles) -
            1.0;
        t.row()
            .cell(spec.name)
            .cell(with_atomics.cycles)
            .cell(plain.cycles)
            .cell(formatPercent(overhead));
    }
    t.print(std::cout);

    std::cout << "\nPaper: atomics cost up to 50% of PageRank's "
                 "execution time on a conventional CMP.\n";
    return 0;
}
