/**
 * @file
 * Memory-access profiling sweep: reuse distance, 3C miss classes and
 * per-region attribution for every registered machine.
 *
 * Runs PageRank on the requested datasets (positional args; default the
 * smallest power-law instance) across every machine in the registry and
 * prints one profile-summary row per run: LLC miss rate, the 3C split
 * (compulsory / conflict / capacity), reuse-distance quantiles and the
 * DRAM/scratchpad traffic attribution. With --profile <path> the full
 * per-run profile documents (reuse histograms, per-region and per-phase
 * counters, per-set LLC heatmap) are written as JSON.
 *
 * Profiles need an OMEGA_PROFILE build and an armed session: without
 * --profile the machines run unarmed and every profile column is zero
 * (the cycle column still reproduces the regular sweep bit for bit).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

namespace {

/** Percentage string helper (0 denominator renders as 0.0). */
double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0 ? 0.0
                      : 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchSession session("bench_profile", argc, argv);
    printBanner(std::cout,
                "Access profile: reuse distance + 3C x machine (PageRank)");

    std::vector<DatasetSpec> specs;
    if (session.args().empty()) {
        specs.push_back(*findDataset("sd"));
    } else {
        for (const std::string &name : session.args()) {
            const auto spec = findDataset(name);
            if (!spec.has_value()) {
                std::fprintf(stderr,
                             "bench_profile: unknown dataset '%s'\n",
                             name.c_str());
                return 2;
            }
            specs.push_back(*spec);
        }
    }
    const AlgorithmKind algo = AlgorithmKind::PageRank;

    SweepRunner sweep;
    for (const DatasetSpec &spec : specs)
        for (MachineKind kind : allMachineKinds())
            sweep.add(spec, algo, kind);
    sweep.run();

    Table t({"dataset", "machine", "cycles", "llc miss%", "compulsory%",
             "conflict%", "capacity%", "reuse p50", "reuse p95",
             "dram rd MB", "sp accesses"});
    for (const DatasetSpec &spec : specs) {
        for (MachineKind kind : allMachineKinds()) {
            const RunOutcome out = runOn(spec, algo, kind);
            const ProfileSummary &p = out.profile;
            t.row()
                .cell(spec.name)
                .cell(machineKindName(kind))
                .cell(out.cycles)
                .cell(pct(p.llc_misses, p.llc_accesses), 2)
                .cell(pct(p.llc_compulsory, p.llc_misses), 2)
                .cell(pct(p.llc_conflict, p.llc_misses), 2)
                .cell(pct(p.llc_capacity, p.llc_misses), 2)
                .cell(p.reuse_p50, 1)
                .cell(p.reuse_p95, 1)
                .cell(static_cast<double>(p.dram_read_bytes) / 1e6, 2)
                .cell(p.sp_accesses);
        }
    }
    t.print(std::cout);

    if (!session.profileEnabled()) {
        std::cout << "\nProfiles unarmed: pass --profile <out.json> (in an "
                     "OMEGA_PROFILE build) to collect reuse/3C/region "
                     "data; the profile columns above are zero.\n";
    } else if (!profile::compiledIn()) {
        std::cout << "\nOMEGA_PROFILE was compiled out: the profile "
                     "document records unarmed all-zero profiles.\n";
    } else {
        std::cout << "\nMisses split into compulsory (first touch), "
                     "conflict (set placement: a same-capacity fully-"
                     "associative cache would have hit) and capacity; "
                     "compare the grasp and baseline splits, and the "
                     "--profile region tables, for where cache management "
                     "pays.\n";
    }
    return 0;
}
