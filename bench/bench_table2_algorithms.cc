/**
 * @file
 * Table II reproduction: graph-based algorithm characterization.
 *
 * Static columns (atomic op type, vtxProp entry size/count, active list,
 * src-prop read) come from the algorithm registry; the %atomic and
 * %random columns are measured by running each algorithm through the
 * counting ProfileMachine on a power-law stand-in and classifying the
 * per-memory-operation fractions the way the paper does.
 */

#include <iostream>

#include "bench_common.hh"
#include "framework/engine.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

namespace {

const char *
classify(double fraction)
{
    if (fraction >= 0.25)
        return "high";
    if (fraction >= 0.10)
        return "medium";
    return "low";
}

} // namespace

int
main(int argc, char **argv)
{
    BenchSession session("bench_table2_algorithms", argc, argv);
    printBanner(std::cout,
                "Table II: graph-based algorithm characterization");

    Table t({"characteristic", "atomic op type", "%atomic", "%random",
             "entry B", "#vtxProp", "active-list", "read src vtxProp"});

    for (const auto &meta : allAlgorithms()) {
        // Measure on a power-law instance the algorithm supports.
        const DatasetSpec spec = meta.needs_symmetric
                                     ? *findDataset("ap")
                                     : *findDataset("sd");
        const Graph &g = datasetGraph(spec);
        ProfileMachine profiler(machineFor(MachineKind::Baseline, spec));
        runAlgorithmOnMachine(meta.kind, g, &profiler);
        const StatsReport r = profiler.report();
        const double total =
            static_cast<double>(std::max<std::uint64_t>(r.l1_accesses, 1));
        const double atomic_frac =
            static_cast<double>(r.atomics_total) / total;
        const double random_frac =
            static_cast<double>(r.vtxprop_accesses) / total;

        t.row()
            .cell(meta.name)
            .cell(meta.atomic_ops)
            .cell(classify(atomic_frac))
            .cell(classify(random_frac))
            .cell(std::uint64_t(meta.vtxprop_bytes))
            .cell(std::uint64_t(meta.num_props))
            .cell(meta.has_active_list ? "yes" : "no")
            .cell(meta.reads_src_prop ? "yes" : "no");
    }
    t.print(std::cout);

    std::cout << "\nPaper Table II: PageRank/SSSP/Radii/CC %atomic high; "
                 "BFS/TC/KC low; all but TC/KC highly random.\n";
    return 0;
}
