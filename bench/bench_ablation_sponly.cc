/**
 * @file
 * Section X.A ablation: scratchpads as plain storage, without PISCs.
 * Paper: PageRank on lj gains only 1.3x with scratchpads alone vs >3x
 * with PISC offloading — the on-chip communication and atomic overheads
 * remain on the cores.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_ablation_sponly", argc, argv);
    printBanner(std::cout,
                "Ablation: scratchpad-only vs full OMEGA (PageRank)");

    Table t({"dataset", "baseline", "sp-only", "full omega",
             "sp-only speedup", "full speedup"});
    SweepRunner sweep;
    for (const auto &ds : {"lj", "rMat"}) {
        const DatasetSpec spec = *findDataset(ds);
        for (MachineKind kind : {MachineKind::Baseline,
                                 MachineKind::OmegaSpOnly,
                                 MachineKind::Omega})
            sweep.add(spec, AlgorithmKind::PageRank, kind);
    }
    sweep.run();
    for (const auto &ds : {"lj", "rMat"}) {
        const DatasetSpec spec = *findDataset(ds);
        const RunOutcome base =
            runOn(spec, AlgorithmKind::PageRank, MachineKind::Baseline);
        const RunOutcome sp_only =
            runOn(spec, AlgorithmKind::PageRank, MachineKind::OmegaSpOnly);
        const RunOutcome full =
            runOn(spec, AlgorithmKind::PageRank, MachineKind::Omega);
        t.row()
            .cell(spec.name)
            .cell(base.cycles)
            .cell(sp_only.cycles)
            .cell(full.cycles)
            .cell(formatSpeedup(static_cast<double>(base.cycles) /
                                static_cast<double>(sp_only.cycles)))
            .cell(formatSpeedup(static_cast<double>(base.cycles) /
                                static_cast<double>(full.cycles)));
    }
    t.print(std::cout);

    std::cout << "\nPaper (lj): 1.3x scratchpads-only vs >3x with "
                 "PISCs.\n";
    return 0;
}
