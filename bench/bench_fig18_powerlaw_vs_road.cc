/**
 * @file
 * Fig 18 reproduction: power-law (lj) vs non-power-law (USA) on
 * PageRank and BFS. Paper: OMEGA gains at most 1.15x on USA because only
 * ~20% of its vtxProp accesses hit the top-20% vertices (vs 77% for lj).
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_fig18_powerlaw_vs_road", argc, argv);
    printBanner(std::cout,
                "Fig 18: power-law (lj) vs non-power-law (USA)");

    Table t({"workload", "baseline cycles", "omega cycles", "speedup",
             "top-20% access%"});
    SweepRunner sweep;
    for (const auto &ds : {"lj", "USA"}) {
        const DatasetSpec spec = *findDataset(ds);
        for (AlgorithmKind algo :
             {AlgorithmKind::PageRank, AlgorithmKind::BFS}) {
            sweep.add(spec, algo, MachineKind::Baseline);
            sweep.add(spec, algo, MachineKind::Omega);
        }
    }
    sweep.run();
    for (const auto &ds : {"lj", "USA"}) {
        const DatasetSpec spec = *findDataset(ds);
        for (AlgorithmKind algo :
             {AlgorithmKind::PageRank, AlgorithmKind::BFS}) {
            const RunOutcome base =
                runOn(spec, algo, MachineKind::Baseline);
            const RunOutcome om = runOn(spec, algo, MachineKind::Omega);
            t.row()
                .cell(algorithmName(algo) + "-" + ds)
                .cell(base.cycles)
                .cell(om.cycles)
                .cell(formatSpeedup(static_cast<double>(base.cycles) /
                                    static_cast<double>(om.cycles)))
                .cell(100.0 * base.stats.hotVertexAccessFraction(), 1);
        }
    }
    t.print(std::cout);

    std::cout << "\nPaper: lj gains ~2-3x (77% of accesses hit the hot "
                 "set); USA is capped around 1.15x (~20%).\n";
    return 0;
}
