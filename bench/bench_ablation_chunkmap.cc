/**
 * @file
 * Section V.D ablation: scratchpad chunk mapping vs the OpenMP-style
 * schedule chunk (paper Fig 12). When the two chunk sizes match, the
 * sequential vtxProp sweep of PageRank's vertexMap stays on the local
 * scratchpad; a mismatch turns those accesses remote.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/table.hh"

using namespace omega;
using namespace omega::bench;

int
main(int argc, char **argv)
{
    BenchSession session("bench_ablation_chunkmap", argc, argv);
    printBanner(std::cout,
                "Ablation: scratchpad chunk mapping vs schedule chunk "
                "(PageRank, rMat)");

    const DatasetSpec spec = *findDataset("rMat");
    // The engine schedules with chunk 64 (EngineOptions default).
    Table t({"sp chunk", "sched chunk", "sp local%", "on-chip MB",
             "hottest PISC busy", "cycles"});
    SweepRunner sweep;
    for (const unsigned sp_chunk : {64u, 1u, 16u, 256u})
        sweep.add(spec, AlgorithmKind::PageRank, MachineKind::Omega,
                  [sp_chunk](MachineParams &p) {
                      p.sp_chunk_size = sp_chunk;
                  });
    sweep.run();
    for (const unsigned sp_chunk : {64u, 1u, 16u, 256u}) {
        const RunOutcome om = runOn(
            spec, AlgorithmKind::PageRank, MachineKind::Omega,
            [&](MachineParams &p) { p.sp_chunk_size = sp_chunk; });
        const double local_frac =
            static_cast<double>(om.stats.sp_local) /
            static_cast<double>(std::max<std::uint64_t>(
                om.stats.sp_local + om.stats.sp_remote, 1));
        t.row()
            .cell(std::uint64_t(sp_chunk))
            .cell(std::uint64_t(64))
            .cell(100.0 * local_frac, 1)
            .cell(static_cast<double>(om.stats.onchip_bytes) / 1e6, 2)
            .cell(om.stats.pisc_max_busy_cycles)
            .cell(om.cycles);
    }
    t.print(std::cout);

    std::cout << "\nMatched chunks keep the sequential vertexMap sweep "
                 "local (paper Fig 12: a mismatch makes half the "
                 "accesses remote). The flip side this reproduction "
                 "surfaces: with matched chunks the hottest vertices "
                 "share one home scratchpad, concentrating PISC load; "
                 "chunk=1 spreads the hubs across engines.\n";
    return 0;
}
