# Thread-count invariance check for a bench binary.
#
# Usage:
#   cmake -DBENCH=<binary> -DOUT_DIR=<dir> -DJOBS=<n> \
#         -P bench_jobs_invariance.cmake
#
# Runs the bench with --jobs 1 and --jobs ${JOBS}; stdout and the --json
# and --trace documents must be byte-identical — parallelism may only
# change wall-clock time.

foreach(var BENCH OUT_DIR JOBS)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "${var} not set")
    endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
foreach(jobs 1 ${JOBS})
    execute_process(
        COMMAND "${BENCH}" --jobs ${jobs}
            --json "${OUT_DIR}/j${jobs}.json"
            --trace "${OUT_DIR}/j${jobs}.trace.json"
        OUTPUT_FILE "${OUT_DIR}/j${jobs}.stdout"
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${BENCH} --jobs ${jobs} failed: ${rc}")
    endif()
endforeach()

foreach(kind json trace.json stdout)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
        "${OUT_DIR}/j1.${kind}" "${OUT_DIR}/j${JOBS}.${kind}"
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR
            "--jobs ${JOBS} changed the ${kind} output "
            "(${OUT_DIR}/j1.${kind} vs ${OUT_DIR}/j${JOBS}.${kind})")
    endif()
endforeach()
message(STATUS "--jobs ${JOBS} output byte-identical to --jobs 1")
